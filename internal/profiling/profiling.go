// Package profiling wires the -cpuprofile/-memprofile CLI flags to
// runtime/pprof, shared by cmd/privbayes and cmd/experiments so
// hot-path regressions are diagnosable in the field without code
// edits, and exposes the net/http/pprof handlers on an isolated mux
// for the daemon's -pprof-addr listener.
package profiling

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"

	"privbayes/internal/telemetry"
)

// Start begins CPU profiling when cpu is non-empty and returns a stop
// function that flushes the CPU profile and, when mem is non-empty,
// writes a heap profile (after a GC). Callers must invoke stop on every
// exit path — including failures, which are exactly when profiles are
// wanted — before os.Exit. Diagnostics flow through log; nil discards
// them.
func Start(cpu, mem string, log *slog.Logger) (stop func(), err error) {
	if log == nil {
		log = telemetry.NopLogger()
	}
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := runtimepprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			runtimepprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Error("memprofile", slog.String("error", err.Error()))
				return
			}
			runtime.GC()
			if err := runtimepprof.WriteHeapProfile(f); err != nil {
				log.Error("memprofile", slog.String("error", err.Error()))
			}
			f.Close()
		}
	}, nil
}

// Mux returns a fresh ServeMux serving the net/http/pprof endpoints
// under /debug/pprof/. The daemon binds it to its own -pprof-addr
// listener (typically loopback) rather than the service port, so
// profiling never rides the same exposure as the API. The handlers are
// wired explicitly; nothing here serves http.DefaultServeMux.
func Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
