// Package privsvm implements the classification baselines of Section 6.6:
// PrivateERM (differentially private empirical risk minimization with
// objective perturbation, Chaudhuri et al. 2011), PrivGene (genetic
// model fitting with an exponential-mechanism selection step, Zhang et
// al. 2013), the naive Majority classifier, and the NoPrivacy reference.
package privsvm

import (
	"math"
	"math/rand"

	"privbayes/internal/dp"
	"privbayes/internal/svm"
)

// NoPrivacy trains the paper's reference hinge-loss C-SVM (C = 1)
// directly on the training data with no privacy protection.
func NoPrivacy(train *svm.Problem, rng *rand.Rand) *svm.Model {
	return svm.TrainHinge(train, 1, 3, rng)
}

// Majority implements the paper's naive ε-DP classifier: count the
// positive labels, add Laplace(1/ε) noise, and predict the majority
// class for every test tuple.
type Majority struct {
	Positive bool
}

// TrainMajority builds the majority classifier under ε-DP.
func TrainMajority(train *svm.Problem, epsilon float64, rng *rand.Rand) *Majority {
	pos := 0
	for _, e := range train.Examples {
		if e.Label > 0 {
			pos++
		}
	}
	noisy := float64(pos) + dp.Laplace(rng, 1/epsilon)
	return &Majority{Positive: noisy > float64(len(train.Examples))/2}
}

// MisclassificationRate evaluates the constant prediction on a test set.
func (m *Majority) MisclassificationRate(test *svm.Problem) float64 {
	if len(test.Examples) == 0 {
		return 0
	}
	wrong := 0
	for _, e := range test.Examples {
		pred := e.Label < 0
		if m.Positive {
			pred = e.Label > 0
		}
		if !pred {
			wrong++
		}
	}
	return float64(wrong) / float64(len(test.Examples))
}

// PrivateERM trains a Huber-loss SVM under ε-DP with objective
// perturbation (Algorithm 2 of Chaudhuri et al. 2011). Feature vectors
// are unit-norm by construction (svm.Featurize), labels are ±1, and the
// Huber smoothing h bounds the loss curvature by c = 1/(2h).
func PrivateERM(train *svm.Problem, epsilon float64, rng *rand.Rand) *svm.Model {
	const (
		h      = 0.5  // Huber smoothing; c = 1/(2h) = 1
		lambda = 1e-3 // base regularization
		iters  = 150
	)
	n := float64(len(train.Examples))
	if n == 0 {
		return &svm.Model{W: make([]float64, train.Dim)}
	}
	c := 1 / (2 * h)
	lam := lambda
	epsPrime := epsilon - math.Log(1+2*c/(n*lam)+c*c/(n*n*lam*lam))
	if epsPrime <= 0 {
		// Chaudhuri et al.: raise the regularizer until the slack term
		// leaves half the budget for the noise vector.
		lam = c / (n * (math.Exp(epsilon/4) - 1))
		epsPrime = epsilon / 2
	}
	// Noise vector with norm ~ Gamma(dim, 2/ε') and uniform direction.
	b := make([]float64, train.Dim)
	var norm float64
	for i := range b {
		b[i] = rng.NormFloat64()
		norm += b[i] * b[i]
	}
	norm = math.Sqrt(norm)
	target := dp.Gamma(rng, float64(train.Dim), 2/epsPrime)
	for i := range b {
		b[i] = b[i] / norm * target
	}
	return svm.TrainHuber(train, lam, h, b, iters)
}

// PrivGene trains a linear classifier with a genetic algorithm whose
// parent selection runs through the exponential mechanism, following
// Zhang et al. (2013). Fitness is the number of correctly classified
// training tuples, whose sensitivity is 1.
func PrivGene(train *svm.Problem, epsilon float64, rng *rand.Rand) *svm.Model {
	const (
		population = 40
		iterations = 12
		elite      = 2 // EM selections per iteration
	)
	n := len(train.Examples)
	if n == 0 {
		return &svm.Model{W: make([]float64, train.Dim)}
	}
	epsIter := epsilon / float64(iterations*elite)

	pop := make([][]float64, population)
	for i := range pop {
		w := make([]float64, train.Dim)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		pop[i] = w
	}
	fitness := func(w []float64) float64 {
		m := svm.Model{W: w}
		correct := 0
		for _, e := range train.Examples {
			if m.Predict(train, e) == e.Label {
				correct++
			}
		}
		return float64(correct)
	}
	scores := make([]float64, population)
	mutScale := 1.0
	var best []float64
	for it := 0; it < iterations; it++ {
		for i, w := range pop {
			scores[i] = fitness(w)
		}
		// Exponential-mechanism selection of the parents.
		parents := make([][]float64, 0, elite)
		for e := 0; e < elite; e++ {
			pick := dp.Exponential(rng, scores, 1, epsIter)
			parents = append(parents, pop[pick])
		}
		best = parents[0]
		// Offspring: uniform crossover of the selected parents plus
		// Gaussian mutation with a decaying scale.
		next := make([][]float64, 0, population)
		next = append(next, parents...)
		for len(next) < population {
			a, b := parents[rng.Intn(len(parents))], parents[rng.Intn(len(parents))]
			child := make([]float64, train.Dim)
			for j := range child {
				if rng.Intn(2) == 0 {
					child[j] = a[j]
				} else {
					child[j] = b[j]
				}
				child[j] += mutScale * rng.NormFloat64() * 0.3
			}
			next = append(next, child)
		}
		pop = next
		mutScale *= 0.8
	}
	return &svm.Model{W: append([]float64(nil), best...)}
}
