package privsvm

import (
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/svm"
)

func separable(n int, seed int64) (*svm.Problem, *svm.Problem) {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("f1", []string{"0", "1", "2"}),
		dataset.NewCategorical("f2", []string{"0", "1"}),
		dataset.NewCategorical("label", []string{"neg", "pos"}),
	}
	mk := func(m int, s int64) *svm.Problem {
		ds := dataset.New(attrs)
		rng := rand.New(rand.NewSource(s))
		rec := make([]uint16, 3)
		for i := 0; i < m; i++ {
			f1, f2 := rng.Intn(3), rng.Intn(2)
			y := 0
			if f1 == 2 || f2 == 1 {
				y = 1
			}
			rec[0], rec[1], rec[2] = uint16(f1), uint16(f2), uint16(y)
			ds.Append(rec)
		}
		return svm.Featurize(ds, 2, func(c int) bool { return c == 1 })
	}
	return mk(n, seed), mk(n/4, seed+1)
}

func TestNoPrivacyIsAccurate(t *testing.T) {
	train, test := separable(4000, 1)
	m := NoPrivacy(train, rand.New(rand.NewSource(2)))
	if mcr := svm.MisclassificationRate(m, test); mcr > 0.02 {
		t.Errorf("NoPrivacy MCR = %v", mcr)
	}
}

func TestMajorityPredictsMajorityClass(t *testing.T) {
	train, test := separable(4000, 3)
	// The positive class (f1=2 or f2=1) covers 2/3 of the space, so
	// Majority should predict positive with a large budget.
	m := TrainMajority(train, 10, rand.New(rand.NewSource(4)))
	if !m.Positive {
		t.Error("expected positive majority")
	}
	mcr := m.MisclassificationRate(test)
	// It should misclassify roughly the negative fraction (~1/3).
	if mcr < 0.2 || mcr > 0.5 {
		t.Errorf("Majority MCR = %v, want ≈ 1/3", mcr)
	}
}

func TestMajorityRobustToBudget(t *testing.T) {
	train, test := separable(4000, 5)
	rng := rand.New(rand.NewSource(6))
	hi := TrainMajority(train, 10, rng).MisclassificationRate(test)
	lo := TrainMajority(train, 0.05, rng).MisclassificationRate(test)
	// With n = 4000 the noisy count rarely flips the majority: rates
	// should agree (the paper notes Majority is insensitive to ε).
	if hi != lo {
		t.Errorf("Majority changed with ε: %v vs %v", hi, lo)
	}
}

func TestPrivateERMConvergesToNonPrivate(t *testing.T) {
	train, test := separable(4000, 7)
	rng := rand.New(rand.NewSource(8))
	big := PrivateERM(train, 1000, rng)
	if mcr := svm.MisclassificationRate(big, test); mcr > 0.05 {
		t.Errorf("PrivateERM at ε=1000 MCR = %v, want near non-private", mcr)
	}
}

func TestPrivateERMSmallBudgetDegrades(t *testing.T) {
	train, test := separable(4000, 9)
	var small, big float64
	const reps = 5
	for r := 0; r < reps; r++ {
		rng := rand.New(rand.NewSource(int64(10 + r)))
		small += svm.MisclassificationRate(PrivateERM(train, 0.01, rng), test)
		big += svm.MisclassificationRate(PrivateERM(train, 100, rng), test)
	}
	if big >= small {
		t.Errorf("PrivateERM should improve with budget: ε=100 %v vs ε=0.01 %v", big/reps, small/reps)
	}
}

func TestPrivGeneLearnsAtLargeBudget(t *testing.T) {
	train, test := separable(3000, 11)
	m := PrivGene(train, 100, rand.New(rand.NewSource(12)))
	if mcr := svm.MisclassificationRate(m, test); mcr > 0.2 {
		t.Errorf("PrivGene at huge ε MCR = %v", mcr)
	}
}

func TestPrivGeneReturnsValidModel(t *testing.T) {
	train, _ := separable(500, 13)
	m := PrivGene(train, 0.1, rand.New(rand.NewSource(14)))
	if len(m.W) != train.Dim {
		t.Fatalf("model dim = %d, want %d", len(m.W), train.Dim)
	}
	for _, w := range m.W {
		if w != w { // NaN check
			t.Fatal("NaN weight")
		}
	}
}

func TestEmptyProblems(t *testing.T) {
	empty := &svm.Problem{Dim: 4, FeatValue: 1}
	rng := rand.New(rand.NewSource(15))
	if m := PrivateERM(empty, 1, rng); len(m.W) != 4 {
		t.Error("PrivateERM empty problem")
	}
	if m := PrivGene(empty, 1, rng); len(m.W) != 4 {
		t.Error("PrivGene empty problem")
	}
}
