package curator

// Benchmarks behind `make bench-json` (BENCH_curator.json):
//
//   - BenchmarkCuratorIngest: acknowledged (fsynced) append throughput
//     in rows/s through the full Append path — encode, WAL append,
//     count-store accumulate;
//   - BenchmarkFitInMemory vs BenchmarkFitScanner: the out-of-core fit
//     overhead — what re-scanning a spooled row log per greedy
//     iteration costs relative to fitting materialized columns;
//   - BenchmarkRefitIncremental vs BenchmarkRefitCold: what the
//     maintained count store buys — an incremental refit redraws from
//     already-aggregated sufficient statistics, a cold refit pays the
//     full log rescan.
//
// cmd/benchjson pairs the two fast/base families into the headline
// ratios fit_outofcore_vs_inmemory and refit_cold_vs_incremental.

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"privbayes"
	"privbayes/internal/core"
	"privbayes/internal/dataset"
)

// writeCSVFile spools a dataset to a CSV file for the scanner benches.
func writeCSVFile(path string, ds *dataset.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := ds.WriteCSV(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

const benchRows = 50_000

func benchAttrs() []dataset.Attribute {
	attrs := make([]dataset.Attribute, 8)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(fmt.Sprintf("a%d", i), []string{"0", "1"})
	}
	return attrs
}

func benchData(n int) *dataset.Dataset {
	attrs := benchAttrs()
	rng := rand.New(rand.NewSource(17))
	ds := dataset.NewWithCapacity(attrs, n)
	rec := make([]uint16, len(attrs))
	for i := 0; i < n; i++ {
		rec[0] = uint16(rng.Intn(2))
		for c := 1; c < len(rec); c++ {
			rec[c] = rec[c-1]
			if rng.Float64() < 0.2 {
				rec[c] = 1 - rec[c]
			}
		}
		ds.Append(rec)
	}
	return ds
}

func BenchmarkCuratorIngest(b *testing.B) {
	for _, batchRows := range []int{1000} {
		b.Run(fmt.Sprintf("batch=%d", batchRows), func(b *testing.B) {
			cur, err := New(Config{Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			defer cur.Close()
			attrs := benchAttrs()
			if err := cur.Create("bench", attrs); err != nil {
				b.Fatal(err)
			}
			batch := benchData(batchRows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cur.Append("bench", fmt.Sprintf("k%d", i), batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batchRows)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

func benchFitOpts() []privbayes.Option {
	return []privbayes.Option{
		privbayes.WithEpsilon(1), privbayes.WithSeed(7),
		privbayes.WithDegree(2), privbayes.WithParallelism(2),
	}
}

func BenchmarkFitInMemory(b *testing.B) {
	b.Run(fmt.Sprintf("rows=%d", benchRows), func(b *testing.B) {
		ds := benchData(benchRows)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := privbayes.Fit(context.Background(), ds, benchFitOpts()...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFitScanner(b *testing.B) {
	b.Run(fmt.Sprintf("rows=%d", benchRows), func(b *testing.B) {
		ds := benchData(benchRows)
		path := filepath.Join(b.TempDir(), "bench.csv")
		if err := writeCSVFile(path, ds); err != nil {
			b.Fatal(err)
		}
		src := privbayes.CSVSource(path, ds.Attrs(), 8192)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := privbayes.FitScanner(context.Background(), src, benchFitOpts()...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchLog materializes a curator row log holding ds, returning its
// path — the input of a cold refit.
func benchLog(b *testing.B, ds *dataset.Dataset) string {
	b.Helper()
	dir := b.TempDir()
	cur, err := New(Config{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if err := cur.Create("bench", ds.Attrs()); err != nil {
		b.Fatal(err)
	}
	for lo := 0; lo < ds.N(); lo += MaxBatchRows {
		hi := lo + MaxBatchRows
		if hi > ds.N() {
			hi = ds.N()
		}
		if _, err := cur.Append("bench", "", ds.Slice(lo, hi)); err != nil {
			b.Fatal(err)
		}
	}
	if err := cur.Close(); err != nil {
		b.Fatal(err)
	}
	return filepath.Join(dir, "bench.rows")
}

func BenchmarkRefitCold(b *testing.B) {
	b.Run(fmt.Sprintf("rows=%d", benchRows), func(b *testing.B) {
		ds := benchData(benchRows)
		path := benchLog(b, ds)
		src := rowLogSource(path, ds.Attrs(), 8192, int64(ds.N()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := privbayes.FitScanner(context.Background(), src, benchFitOpts()...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRefitIncremental(b *testing.B) {
	b.Run(fmt.Sprintf("rows=%d", benchRows), func(b *testing.B) {
		ds := benchData(benchRows)
		m0, err := privbayes.Fit(context.Background(), ds, benchFitOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		st, err := registeredStore(ds.Attrs(), m0.Network)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Accumulate(ds); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := core.RefitCountsContext(context.Background(), ds.Attrs(), st.Source(),
				m0.Network, m0.K, core.Options{
					Epsilon:     1,
					Mode:        core.ModeBinary,
					Score:       m0.Score,
					Parallelism: 2,
					Rand:        rand.New(rand.NewSource(int64(i))),
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
