package curator

// The per-dataset row log. Each curated dataset owns one append-only
// WAL (internal/wal) whose records are:
//
//	type 0 "schema": JSON attrSpec array — written once at creation;
//	  reopening validates the stored schema against the caller's.
//	type 1 "rows":   [keyLen u16][key][d u16][nrows u32][values u16 LE]
//	  — one acknowledged append batch. The key is the client's
//	  idempotency key ("" for fire-and-forget appends).
//	type 2 "fit":    JSON fitMarker — a completed, published refit:
//	  model id, ε, the row count the fit covered, and the learned
//	  network, so a restart can rebuild the incremental count store
//	  without refitting.
//
// The WAL's fsync-then-acknowledge contract gives the curator its
// crash semantics for free: an acknowledged batch is on stable storage
// before the HTTP 200 leaves the process, and a batch torn by a crash
// was never acknowledged and vanishes at recovery.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"privbayes/internal/core"
	"privbayes/internal/dataset"
)

// Record type tags.
const (
	recSchema byte = 0
	recRows   byte = 1
	recFit    byte = 2
)

// MaxBatchRows bounds one append batch; larger ingests split into
// multiple batches client-side.
const MaxBatchRows = 1 << 20

// attrSpec is the stored schema form, one attribute per element — the
// same wire shape the serving layer speaks (server.AttrSpec), redefined
// here so the curator does not depend on the HTTP layer. Taxonomy
// hierarchies beyond the automatic continuous binary tree are not
// carried, matching the serving schema's contract.
type attrSpec struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Labels []string `json:"labels,omitempty"`
	Min    float64  `json:"min,omitempty"`
	Max    float64  `json:"max,omitempty"`
	Bins   int      `json:"bins,omitempty"`
}

func specsFromAttrs(attrs []dataset.Attribute) []attrSpec {
	specs := make([]attrSpec, len(attrs))
	for i := range attrs {
		a := &attrs[i]
		if a.Kind == dataset.Continuous {
			specs[i] = attrSpec{Name: a.Name, Kind: "continuous", Min: a.Min, Max: a.Max, Bins: a.Size()}
		} else {
			specs[i] = attrSpec{Name: a.Name, Kind: "categorical", Labels: append([]string(nil), a.Labels...)}
		}
	}
	return specs
}

func attrsFromSpecs(specs []attrSpec) ([]dataset.Attribute, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("curator: stored schema has no attributes")
	}
	attrs := make([]dataset.Attribute, len(specs))
	for i, s := range specs {
		switch s.Kind {
		case "categorical":
			if len(s.Labels) == 0 || len(s.Labels) > 1<<16 {
				return nil, fmt.Errorf("curator: stored attribute %q has %d labels", s.Name, len(s.Labels))
			}
			attrs[i] = dataset.NewCategorical(s.Name, s.Labels)
		case "continuous":
			if s.Bins < 1 || s.Bins > 1<<16 || math.IsNaN(s.Min) || math.IsNaN(s.Max) || s.Min >= s.Max {
				return nil, fmt.Errorf("curator: stored attribute %q has invalid binning", s.Name)
			}
			attrs[i] = dataset.NewContinuous(s.Name, s.Min, s.Max, s.Bins)
		default:
			return nil, fmt.Errorf("curator: stored attribute %q has unknown kind %q", s.Name, s.Kind)
		}
	}
	return attrs, nil
}

// attrsEqual compares two schemas structurally (name, kind, domain).
func attrsEqual(a, b []dataset.Attribute) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Kind != b[i].Kind || a[i].Size() != b[i].Size() {
			return false
		}
	}
	return true
}

// fitMarker records one completed refit in the row log.
type fitMarker struct {
	ModelID  string       `json:"model_id"`
	Epsilon  float64      `json:"epsilon"`
	Rows     int64        `json:"rows"`  // row count the fit covered
	Kind     string       `json:"kind"`  // "cold", "incremental" or "recovered"
	K        int          `json:"k"`     // binary-mode anchor degree, -1 in general mode
	Score    int          `json:"score"` // score.Function that chose the network
	Network  core.Network `json:"network"`
	UnixNano int64        `json:"unix_nano"`
}

// marshalFitMarker builds the type-2 record payload.
func marshalFitMarker(fm *fitMarker) ([]byte, error) {
	body, err := json.Marshal(fm)
	if err != nil {
		return nil, err
	}
	return append([]byte{recFit}, body...), nil
}

func unmarshalFitMarker(payload []byte, fm *fitMarker) error {
	if err := json.Unmarshal(payload, fm); err != nil {
		return fmt.Errorf("curator: decode fit marker: %w", err)
	}
	if fm.ModelID == "" || fm.Rows <= 0 {
		return fmt.Errorf("curator: fit marker missing model id or rows")
	}
	return nil
}

// encodeSchema builds the type-0 record payload.
func encodeSchema(attrs []dataset.Attribute) ([]byte, error) {
	body, err := json.Marshal(specsFromAttrs(attrs))
	if err != nil {
		return nil, err
	}
	return append([]byte{recSchema}, body...), nil
}

func decodeSchema(payload []byte) ([]dataset.Attribute, error) {
	var specs []attrSpec
	if err := json.Unmarshal(payload, &specs); err != nil {
		return nil, fmt.Errorf("curator: decode stored schema: %w", err)
	}
	return attrsFromSpecs(specs)
}

// encodeRows builds the type-1 record payload for one batch.
func encodeRows(key string, chunk *dataset.Dataset) ([]byte, error) {
	if len(key) > 1<<16-1 {
		return nil, fmt.Errorf("curator: batch key %d bytes exceeds 65535", len(key))
	}
	n, d := chunk.N(), chunk.D()
	if n == 0 {
		return nil, fmt.Errorf("curator: empty batch")
	}
	if n > MaxBatchRows {
		return nil, fmt.Errorf("curator: batch of %d rows exceeds cap %d", n, MaxBatchRows)
	}
	size := 1 + 2 + len(key) + 2 + 4 + n*d*2
	if size > 16<<20 {
		return nil, fmt.Errorf("curator: batch encodes to %d bytes, exceeding the record cap; split it", size)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, recRows)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(d))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for r := 0; r < n; r++ {
		for c := 0; c < d; c++ {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(chunk.Value(r, c)))
		}
	}
	return buf, nil
}

// rowsHeader is the decoded header of a type-1 record: the batch key,
// the geometry, and the offset of the value block within the payload.
type rowsHeader struct {
	key     string
	d, n    int
	valsOff int
}

func decodeRowsHeader(payload []byte) (rowsHeader, error) {
	var h rowsHeader
	if len(payload) < 2 {
		return h, fmt.Errorf("curator: rows record too short")
	}
	kl := int(binary.LittleEndian.Uint16(payload))
	off := 2 + kl
	if len(payload) < off+6 {
		return h, fmt.Errorf("curator: rows record too short")
	}
	h.key = string(payload[2 : 2+kl])
	h.d = int(binary.LittleEndian.Uint16(payload[off:]))
	h.n = int(binary.LittleEndian.Uint32(payload[off+2:]))
	h.valsOff = off + 6
	if h.d == 0 || h.n == 0 || h.n > MaxBatchRows {
		return h, fmt.Errorf("curator: implausible rows record geometry %dx%d", h.n, h.d)
	}
	if len(payload) != h.valsOff+h.n*h.d*2 {
		return h, fmt.Errorf("curator: rows record length %d does not match %dx%d geometry", len(payload), h.n, h.d)
	}
	return h, nil
}

// decodeRowsInto appends at most limit of the record's rows to dst
// (limit < 0 means all), validating every code against the schema.
func decodeRowsInto(dst *dataset.Dataset, payload []byte, h rowsHeader, limit int) error {
	if h.d != dst.D() {
		return fmt.Errorf("curator: rows record has %d columns, schema has %d", h.d, dst.D())
	}
	n := h.n
	if limit >= 0 && n > limit {
		n = limit
	}
	rec := make([]uint16, h.d)
	off := h.valsOff
	for r := 0; r < n; r++ {
		for c := 0; c < h.d; c++ {
			v := binary.LittleEndian.Uint16(payload[off:])
			if int(v) >= dst.Attr(c).Size() {
				return fmt.Errorf("curator: row %d col %d: code %d out of domain [0, %d)", r, c, v, dst.Attr(c).Size())
			}
			rec[c] = v
			off += 2
		}
		dst.Append(rec)
	}
	return nil
}

// wireMagic mirrors the wal package's file header; the streaming row
// scanner below parses the log directly so a multi-gigabyte row log is
// never held in memory during a fit scan.
const wireMagic = "PBWAL\x00\x01\n"

var wireCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// rowLogSource builds a re-scannable chunk source over the row log at
// path: the out-of-core fit path of a cold refit. Only intact type-1
// records contribute rows; the scan tolerates a torn tail exactly like
// WAL recovery (the torn record was never acknowledged). maxRows > 0
// bounds the scan to the first maxRows ingested rows — the snapshot
// that lets a fit scan a log other clients are still appending to.
func rowLogSource(path string, attrs []dataset.Attribute, chunkRows int, maxRows int64) *dataset.ChunkSource {
	if chunkRows <= 0 {
		chunkRows = dataset.DefaultChunkRows
	}
	return &dataset.ChunkSource{
		Attrs:     attrs,
		ChunkRows: chunkRows,
		Open: func() (dataset.Scanner, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			br := bufio.NewReaderSize(f, 1<<20)
			hdr := make([]byte, len(wireMagic))
			if _, err := io.ReadFull(br, hdr); err != nil || string(hdr) != wireMagic {
				f.Close()
				return nil, fmt.Errorf("curator: %s is not a row log", path)
			}
			remaining := int64(-1)
			if maxRows > 0 {
				remaining = maxRows
			}
			return &rowLogScanner{f: f, br: br, attrs: attrs, chunkRows: chunkRows, remaining: remaining}, nil
		},
	}
}

// rowLogScanner streams type-1 records off the log, re-chunking their
// rows into chunkRows-sized datasets. Batch boundaries never leak into
// chunk boundaries, so the emitted row stream is identical to the
// ingest order regardless of how appends were batched.
type rowLogScanner struct {
	f         *os.File
	br        *bufio.Reader
	attrs     []dataset.Attribute
	chunkRows int
	remaining int64 // rows left to emit; -1 = unlimited

	pending *dataset.Dataset // partially filled chunk
	eof     bool
	err     error
}

func (s *rowLogScanner) Next() (*dataset.Dataset, error) {
	if s.err != nil {
		return nil, s.err
	}
	for !s.eof {
		if s.pending != nil && s.pending.N() >= s.chunkRows {
			break
		}
		if s.remaining == 0 {
			s.eof = true
			break
		}
		payload, err := s.readRecord()
		if err == io.EOF {
			s.eof = true
			break
		}
		if err != nil {
			s.err = err
			return nil, err
		}
		if len(payload) == 0 || payload[0] != recRows {
			continue
		}
		h, err := decodeRowsHeader(payload[1:])
		if err != nil {
			s.err = err
			return nil, err
		}
		if s.pending == nil {
			s.pending = dataset.New(s.attrs)
		}
		limit := -1
		if s.remaining >= 0 {
			limit = int(s.remaining)
		}
		before := s.pending.N()
		if err := decodeRowsInto(s.pending, payload[1:], h, limit); err != nil {
			s.err = err
			return nil, err
		}
		if s.remaining >= 0 {
			s.remaining -= int64(s.pending.N() - before)
		}
	}
	if s.pending == nil || s.pending.N() == 0 {
		s.err = io.EOF
		return nil, io.EOF
	}
	out := s.pending
	if out.N() > s.chunkRows {
		// Split: emit exactly chunkRows, carry the tail forward.
		head := out.Slice(0, s.chunkRows)
		tail := dataset.New(s.attrs)
		rec := make([]uint16, out.D())
		for r := s.chunkRows; r < out.N(); r++ {
			for c := 0; c < out.D(); c++ {
				rec[c] = uint16(out.Value(r, c))
			}
			tail.Append(rec)
		}
		s.pending = tail
		return head, nil
	}
	s.pending = nil
	return out, nil
}

// readRecord reads one WAL record, verifying its checksum. A torn tail
// (truncated header/payload or checksum mismatch at end of file)
// surfaces as io.EOF: those bytes were never acknowledged.
func (s *rowLogScanner) readRecord() ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(s.br, hdr[:]); err != nil {
		return nil, io.EOF // clean end or torn header
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	if length == 0 || length > 16<<20 {
		return nil, fmt.Errorf("curator: implausible row-log record length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(s.br, payload); err != nil {
		return nil, io.EOF // torn payload
	}
	if crc32.Checksum(payload, wireCastagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
		// Checksum mismatch: if more data follows this is corruption, but
		// the WAL layer already failed Open in that case; by the time a
		// scan runs, a mismatch can only be a tail torn after recovery.
		return nil, io.EOF
	}
	return payload, nil
}

func (s *rowLogScanner) Close() error { return s.f.Close() }

// nowUnixNano is a seam for tests that pin time.
var nowUnixNano = func() int64 { return time.Now().UnixNano() }
