package curator

import (
	"bytes"
	"testing"

	"privbayes/internal/dataset"
)

// FuzzAppendRows throws arbitrary bytes at the row-record codec — the
// parser every recovery and every cold-refit scan runs over
// disk-resident (and therefore untrusted) log payloads. Whatever the
// bytes, decoding must never panic, and anything that decodes must
// round-trip: re-encoding the decoded batch under the decoded key
// yields a payload that decodes to the identical rows.
func FuzzAppendRows(f *testing.F) {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1"}),
		dataset.NewCategorical("b", []string{"x", "y", "z"}),
		dataset.NewContinuous("c", 0, 10, 4),
	}
	seed := dataset.NewWithCapacity(attrs, 4)
	for i := 0; i < 4; i++ {
		seed.Append([]uint16{uint16(i % 2), uint16(i % 3), uint16(i % 4)})
	}
	if enc, err := encodeRows("batch-1", seed); err == nil {
		f.Add(enc[1:]) // payload after the record-type tag
	}
	if enc, err := encodeRows("", seed.Slice(0, 1)); err == nil {
		f.Add(enc[1:])
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 1, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		h, err := decodeRowsHeader(payload)
		if err != nil {
			return
		}
		got := dataset.NewWithCapacity(attrs, h.n)
		if err := decodeRowsInto(got, payload, h, -1); err != nil {
			return
		}
		if got.N() != h.n {
			t.Fatalf("decoded %d rows, header says %d", got.N(), h.n)
		}
		enc, err := encodeRows(h.key, got)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		h2, err := decodeRowsHeader(enc[1:])
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if h2.key != h.key || h2.n != h.n || h2.d != h.d {
			t.Fatalf("round-trip header mismatch: %+v vs %+v", h2, h)
		}
		if !bytes.Equal(enc[1:][h2.valsOff:], payload[h.valsOff:]) {
			t.Fatal("round-trip value block mismatch")
		}

		// A prefix-limited decode (what snapshot-bounded cold fits use)
		// must agree with the full decode's prefix.
		part := dataset.NewWithCapacity(attrs, 1)
		if err := decodeRowsInto(part, payload, h, 1); err != nil {
			t.Fatalf("limited decode failed after full decode succeeded: %v", err)
		}
		for c := 0; c < part.D(); c++ {
			if part.Value(0, c) != got.Value(0, c) {
				t.Fatalf("limited decode row differs at col %d", c)
			}
		}
	})
}
