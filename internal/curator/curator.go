// Package curator implements the continuous-curation subsystem: per-
// dataset append-only row logs with crash-safe idempotent ingest,
// incremental maintenance of the mergeable count store, and budget-
// metered background refits that republish models atomically.
//
// The crash contract mirrors the serving stack's ledger: a row batch is
// acknowledged only after its WAL record is fsynced, so acknowledged
// appends survive kill -9 and unacknowledged ones vanish; refits charge
// ε through the accountant's idempotent keys, so a refit interrupted at
// any point spends either 0 or exactly its ε — never twice.
package curator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"privbayes"
	"privbayes/internal/accountant"
	"privbayes/internal/core"
	"privbayes/internal/counts"
	"privbayes/internal/dataset"
	"privbayes/internal/faultfs"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
	"privbayes/internal/wal"
)

// Sentinel errors, mapped to HTTP statuses by the serving layer.
var (
	ErrNotFound       = errors.New("curator: dataset not found")
	ErrExists         = errors.New("curator: dataset already exists")
	ErrSchemaMismatch = errors.New("curator: batch schema does not match dataset schema")
	ErrClosed         = errors.New("curator: closed")
)

// Config parameterizes a Curator.
type Config struct {
	// Dir holds one row log per curated dataset (<id>.rows). Required.
	Dir string
	// Ledger meters refit ε. nil disables refits (ingest-only curation).
	Ledger *accountant.Ledger
	// RefitEpsilon is the ε charged per refit. <= 0 disables refits.
	RefitEpsilon float64
	// RefitRows triggers a refit once that many rows have accumulated
	// beyond the last fitted model. <= 0 disables the row trigger.
	RefitRows int64
	// RefitMaxStaleness triggers a refit once unfitted rows are older
	// than this. <= 0 disables the staleness trigger.
	RefitMaxStaleness time.Duration
	// PollInterval is the staleness check cadence; <= 0 selects 15s.
	PollInterval time.Duration
	// ChunkRows bounds rows materialized at a time during log scans
	// (cold fits, store rebuilds); <= 0 selects dataset.DefaultChunkRows.
	ChunkRows int
	// FitOptions extend cold refits (seed, degree, β...). ε and
	// parallelism are always appended by the curator and win.
	FitOptions []privbayes.Option
	// Seed, when set, seeds each incremental refit's generator; nil
	// draws a cryptographic seed per refit.
	Seed func() int64
	// Acquire reserves fit workers from the serving layer's budget;
	// nil runs refits at parallelism 2 unmetered. The returned release
	// must be called when the refit finishes.
	Acquire func(ctx context.Context, want int) (got int, release func(), err error)
	// Publish installs a refit model into the serving registry. nil
	// records the fit marker without serving the model.
	Publish func(id string, m *privbayes.Model, epsilon float64) error
	// Lookup fetches a previously published model, reporting whether it
	// exists — the crash-recovery probe for refits that charged ε and
	// published but died before writing their fit marker.
	Lookup func(id string) (*privbayes.Model, bool)
	// FS is the filesystem seam for the row logs; nil selects the real
	// filesystem.
	FS faultfs.FS
	// Logf receives operational notes; nil discards them.
	Logf func(format string, args ...any)
	// Metrics instruments the curator; nil disables instrumentation.
	Metrics *Metrics
}

// Curator manages every curated dataset under one directory.
type Curator struct {
	cfg Config
	fs  faultfs.FS

	mu       sync.Mutex
	datasets map[string]*curated
	closed   bool

	wg   sync.WaitGroup
	stop chan struct{}
}

// curated is one dataset's live state.
type curated struct {
	c    *Curator
	id   string
	path string

	mu    sync.Mutex
	log   *wal.Log
	attrs []dataset.Attribute
	rows  int64
	keys  map[string]int64 // acknowledged batch key -> rows after that batch

	fit        *fitMarker    // latest fit; nil before the first
	store      *counts.Store // incremental counts over fit.Network; nil before the first fit
	dirtySince time.Time     // first unfitted append; zero when model is fresh
	refitting  bool
	failedRows int64 // rows at the last failed refit; re-armed by new appends
}

// New opens (or creates) the curator directory and recovers every
// existing row log in it: replaying metadata, truncating torn tails,
// and rebuilding incremental count stores for datasets with a fit.
func New(cfg Config) (*Curator, error) {
	if cfg.Dir == "" {
		return nil, errors.New("curator: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	c := &Curator{
		cfg:      cfg,
		fs:       faultfs.Or(cfg.FS),
		datasets: map[string]*curated{},
		stop:     make(chan struct{}),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".rows") {
			continue
		}
		id := strings.TrimSuffix(name, ".rows")
		d, err := c.recover(id, filepath.Join(cfg.Dir, name))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("curator: recover %s: %w", id, err)
		}
		c.datasets[id] = d
	}
	c.cfg.Metrics.observe(c)
	if c.refitsEnabled() {
		// Recovered datasets may already be past a trigger.
		for _, d := range c.datasets {
			d.mu.Lock()
			d.maybeRefitLocked()
			d.mu.Unlock()
		}
		if cfg.RefitMaxStaleness > 0 {
			c.wg.Add(1)
			go c.pollStaleness()
		}
	}
	return c, nil
}

func (c *Curator) refitsEnabled() bool {
	return c.cfg.Ledger != nil && c.cfg.RefitEpsilon > 0 &&
		(c.cfg.RefitRows > 0 || c.cfg.RefitMaxStaleness > 0)
}

func (c *Curator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// validID keeps dataset ids safe as file names; the HTTP layer applies
// its stricter id grammar before calling in.
func validID(id string) error {
	if id == "" || len(id) > 128 || strings.ContainsAny(id, "/\\") ||
		strings.Contains(id, "..") || strings.HasPrefix(id, ".") {
		return fmt.Errorf("curator: invalid dataset id %q", id)
	}
	return nil
}

// Create registers a new curated dataset with the given schema and
// writes its row log's schema record durably before returning.
func (c *Curator) Create(id string, attrs []dataset.Attribute) error {
	if err := validID(id); err != nil {
		return err
	}
	if len(attrs) == 0 {
		return errors.New("curator: schema has no attributes")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.datasets[id]; ok {
		return ErrExists
	}
	path := filepath.Join(c.cfg.Dir, id+".rows")
	if _, err := os.Stat(path); err == nil {
		return ErrExists
	}
	log, err := wal.Open(path, wal.Options{FS: c.cfg.FS}, func(int64, []byte) error { return nil })
	if err != nil {
		return err
	}
	rec, err := encodeSchema(attrs)
	if err == nil {
		err = log.Append(rec)
	}
	if err != nil {
		log.Close()
		c.fs.Remove(path)
		return err
	}
	c.datasets[id] = &curated{
		c: c, id: id, path: path, log: log,
		attrs: append([]dataset.Attribute(nil), attrs...),
		keys:  map[string]int64{},
	}
	return nil
}

// recover rebuilds one dataset's state from its row log: schema from
// the type-0 record, row count and batch keys from type-1 headers
// (values are not retained), the latest fit marker from type-2 — then
// one streaming scan to rebuild the incremental count store when a fit
// exists.
func (c *Curator) recover(id, path string) (*curated, error) {
	d := &curated{c: c, id: id, path: path, keys: map[string]int64{}}
	log, err := wal.Open(path, wal.Options{FS: c.cfg.FS}, func(_ int64, payload []byte) error {
		if len(payload) == 0 {
			return errors.New("empty record")
		}
		switch payload[0] {
		case recSchema:
			attrs, err := decodeSchema(payload[1:])
			if err != nil {
				return err
			}
			d.attrs = attrs
		case recRows:
			if d.attrs == nil {
				return errors.New("rows record before schema record")
			}
			h, err := decodeRowsHeader(payload[1:])
			if err != nil {
				return err
			}
			if h.d != len(d.attrs) {
				return fmt.Errorf("rows record has %d columns, schema has %d", h.d, len(d.attrs))
			}
			d.rows += int64(h.n)
			if h.key != "" {
				d.keys[h.key] = d.rows
			}
		case recFit:
			var fm fitMarker
			if err := unmarshalFitMarker(payload[1:], &fm); err != nil {
				return err
			}
			d.fit = &fm
		default:
			return fmt.Errorf("unknown record type %d", payload[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if d.attrs == nil {
		log.Close()
		return nil, errors.New("row log has no schema record")
	}
	d.log = log
	if d.fit != nil {
		st, err := c.buildStore(d, d.fit.Network, d.rows)
		if err != nil {
			log.Close()
			return nil, err
		}
		d.store = st
	}
	if d.rows > fitRows(d.fit) {
		// Unfitted rows exist; their true append time is unknown, so
		// staleness restarts at recovery.
		d.dirtySince = time.Now()
	}
	return d, nil
}

// buildStore registers the network's AP pairs in a fresh store and
// seeds it with one streaming scan over the log's first maxRows rows.
func (c *Curator) buildStore(d *curated, net core.Network, maxRows int64) (*counts.Store, error) {
	st, err := registeredStore(d.attrs, net)
	if err != nil {
		return nil, err
	}
	if maxRows == 0 {
		return st, nil
	}
	src := rowLogSource(d.path, d.attrs, c.cfg.ChunkRows, maxRows)
	sc, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	for {
		chunk, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := st.Accumulate(chunk); err != nil {
			return nil, err
		}
	}
	if st.Rows() != maxRows {
		return nil, fmt.Errorf("curator: store rebuild read %d rows, log metadata says %d", st.Rows(), maxRows)
	}
	return st, nil
}

func registeredStore(attrs []dataset.Attribute, net core.Network) (*counts.Store, error) {
	st := counts.NewStore(attrs)
	for _, pair := range net.Pairs {
		if err := st.Register(pair.Parents, []marginal.Var{pair.X}); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func fitRows(fm *fitMarker) int64 {
	if fm == nil {
		return 0
	}
	return fm.Rows
}

// lookup fetches a dataset.
func (c *Curator) lookup(id string) (*curated, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	d, ok := c.datasets[id]
	if !ok {
		return nil, ErrNotFound
	}
	return d, nil
}

// Attrs returns a dataset's schema.
func (c *Curator) Attrs(id string) ([]dataset.Attribute, error) {
	d, err := c.lookup(id)
	if err != nil {
		return nil, err
	}
	return d.attrs, nil
}

// Len returns the number of curated datasets.
func (c *Curator) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.datasets)
}

// List returns the curated dataset ids, unordered.
func (c *Curator) List() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.datasets))
	for id := range c.datasets {
		ids = append(ids, id)
	}
	return ids
}

// Append durably ingests one batch of rows. A non-empty key makes the
// append idempotent: replaying an acknowledged key is a no-op reporting
// duplicate=true, so clients retry failed appends safely. The batch is
// acknowledged only after its record is fsynced to the row log.
func (c *Curator) Append(id, key string, batch *dataset.Dataset) (duplicate bool, err error) {
	d, err := c.lookup(id)
	if err != nil {
		return false, err
	}
	if batch.N() == 0 {
		return false, errors.New("curator: empty batch")
	}
	if !attrsEqual(batch.Attrs(), d.attrs) {
		return false, ErrSchemaMismatch
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if key != "" {
		if _, ok := d.keys[key]; ok {
			c.cfg.Metrics.batch("duplicate", 0)
			return true, nil
		}
	}
	rec, err := encodeRows(key, batch)
	if err != nil {
		c.cfg.Metrics.batch("rejected", 0)
		return false, err
	}
	if err := d.log.Append(rec); err != nil {
		c.cfg.Metrics.batch("rejected", 0)
		return false, err
	}
	// Acknowledged: the record is on stable storage.
	d.rows += int64(batch.N())
	if key != "" {
		d.keys[key] = d.rows
	}
	if d.store != nil {
		if err := d.store.Accumulate(batch); err != nil {
			// Counts and log have diverged; drop the store so the next
			// refit rebuilds it from the log.
			c.logf("curator %s: count store diverged, dropping: %v", id, err)
			d.store = nil
		}
	}
	if d.dirtySince.IsZero() {
		d.dirtySince = time.Now()
	}
	c.cfg.Metrics.batch("appended", batch.N())
	d.maybeRefitLocked()
	return false, nil
}

// Status is a curated dataset's externally visible state.
type Status struct {
	ID           string `json:"id"`
	Rows         int64  `json:"rows"`
	UnfittedRows int64  `json:"unfitted_rows"`
	// Staleness is seconds since the oldest unfitted append; 0 when the
	// model covers every ingested row.
	StalenessSeconds float64 `json:"staleness_seconds"`
	ModelID          string  `json:"model_id,omitempty"`
	FitRows          int64   `json:"fit_rows,omitempty"`
	FitKind          string  `json:"fit_kind,omitempty"`
	FitUnixNano      int64   `json:"fit_unix_nano,omitempty"`
	FitEpsilon       float64 `json:"fit_epsilon,omitempty"`
	EpsilonSpent     float64 `json:"epsilon_spent"`
	EpsilonBudget    float64 `json:"epsilon_budget,omitempty"`
	Refitting        bool    `json:"refitting,omitempty"`
}

// Status reports a dataset's row count, staleness, last refit and ε
// standing.
func (c *Curator) Status(id string) (Status, error) {
	d, err := c.lookup(id)
	if err != nil {
		return Status{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Status{ID: id, Rows: d.rows, UnfittedRows: d.rows - fitRows(d.fit), Refitting: d.refitting}
	if !d.dirtySince.IsZero() {
		s.StalenessSeconds = time.Since(d.dirtySince).Seconds()
	}
	if d.fit != nil {
		s.ModelID = d.fit.ModelID
		s.FitRows = d.fit.Rows
		s.FitKind = d.fit.Kind
		s.FitUnixNano = d.fit.UnixNano
		s.FitEpsilon = d.fit.Epsilon
	}
	if c.cfg.Ledger != nil {
		e := c.cfg.Ledger.Get(id)
		s.EpsilonSpent = e.Spent
		s.EpsilonBudget = e.Budget
	}
	return s, nil
}

// StalenessSeconds returns the age of the oldest unfitted append across
// all curated datasets — the staleness gauge.
func (c *Curator) StalenessSeconds() float64 {
	c.mu.Lock()
	ds := make([]*curated, 0, len(c.datasets))
	for _, d := range c.datasets {
		ds = append(ds, d)
	}
	c.mu.Unlock()
	var oldest time.Time
	for _, d := range ds {
		d.mu.Lock()
		t := d.dirtySince
		d.mu.Unlock()
		if !t.IsZero() && (oldest.IsZero() || t.Before(oldest)) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest).Seconds()
}

// StoreCells returns the total live count-table cells across curated
// datasets — the count-store size gauge (8 bytes of memory per cell).
func (c *Curator) StoreCells() int {
	c.mu.Lock()
	ds := make([]*curated, 0, len(c.datasets))
	for _, d := range c.datasets {
		ds = append(ds, d)
	}
	c.mu.Unlock()
	total := 0
	for _, d := range ds {
		d.mu.Lock()
		if d.store != nil {
			cells, _ := d.store.Cells()
			total += cells
		}
		d.mu.Unlock()
	}
	return total
}

// pollStaleness drives the staleness trigger for quiet datasets that
// stopped receiving appends.
func (c *Curator) pollStaleness() {
	defer c.wg.Done()
	iv := c.cfg.PollInterval
	if iv <= 0 {
		iv = 15 * time.Second
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		ds := make([]*curated, 0, len(c.datasets))
		for _, d := range c.datasets {
			ds = append(ds, d)
		}
		c.mu.Unlock()
		for _, d := range ds {
			d.mu.Lock()
			d.maybeRefitLocked()
			d.mu.Unlock()
		}
	}
}

// maybeRefitLocked starts a background refit when a trigger fires.
// Caller holds d.mu.
func (d *curated) maybeRefitLocked() {
	c := d.c
	if !c.refitsEnabled() || d.refitting {
		return
	}
	select {
	case <-c.stop:
		return // closing: no new refits
	default:
	}
	unfitted := d.rows - fitRows(d.fit)
	if unfitted <= 0 || d.rows <= d.failedRows {
		return
	}
	rowTrig := c.cfg.RefitRows > 0 && unfitted >= c.cfg.RefitRows
	staleTrig := c.cfg.RefitMaxStaleness > 0 && !d.dirtySince.IsZero() &&
		time.Since(d.dirtySince) >= c.cfg.RefitMaxStaleness
	if !rowTrig && !staleTrig {
		return
	}
	d.refitting = true
	c.wg.Add(1)
	go c.runRefit(d)
}

// refitRand derives the generator for one incremental refit.
func (c *Curator) refitRand() *rand.Rand {
	if c.cfg.Seed != nil {
		return rand.New(rand.NewSource(c.cfg.Seed()))
	}
	return core.CryptoSource().Rand()
}

// runRefit performs one refit end to end: snapshot, idempotent ε
// charge, fit (incremental over the count store when the network is
// known, cold over the row log otherwise), publish, durable fit marker.
func (c *Curator) runRefit(d *curated) {
	defer c.wg.Done()
	t0 := time.Now()
	outcome, kind, err := c.refit(d)
	c.cfg.Metrics.refit(outcome, kind, time.Since(t0).Seconds())
	if err != nil {
		c.logf("curator %s: refit (%s) %s: %v", d.id, kind, outcome, err)
	} else if outcome != "skipped" {
		c.logf("curator %s: refit (%s) %s in %s", d.id, kind, outcome, time.Since(t0).Round(time.Millisecond))
	}
	d.mu.Lock()
	d.refitting = false
	// Appends may have landed during the refit; re-check triggers so a
	// busy dataset keeps converging.
	d.maybeRefitLocked()
	d.mu.Unlock()
}

func (c *Curator) refit(d *curated) (outcome, kind string, err error) {
	eps := c.cfg.RefitEpsilon

	// Snapshot under the lock: row count, and for incremental refits a
	// mergeable copy of the count store, so appends continue during the
	// fit without perturbing it.
	d.mu.Lock()
	rowsAt := d.rows
	prevFit := d.fit
	var snap *counts.Store
	if prevFit != nil && d.store != nil && d.store.Rows() == rowsAt {
		if s, cerr := registeredStore(d.attrs, prevFit.Network); cerr == nil && s.Merge(d.store) == nil {
			snap = s
		}
	}
	d.mu.Unlock()
	if rowsAt == 0 {
		return "skipped", "", nil
	}
	kind = "cold"
	if snap != nil {
		kind = "incremental"
	}

	chargeKey := fmt.Sprintf("curator-%s-%d", d.id, rowsAt)
	modelID := fmt.Sprintf("%s-refit-%d", d.id, rowsAt)
	dup, prevID, err := c.cfg.Ledger.ChargeIdempotent(d.id, eps, chargeKey, modelID)
	if err != nil {
		d.mu.Lock()
		d.failedRows = rowsAt
		d.mu.Unlock()
		return "skipped", kind, err
	}
	if dup {
		modelID = prevID
		if c.cfg.Lookup != nil {
			if m, ok := c.cfg.Lookup(prevID); ok {
				// A previous run charged, published, and died before its
				// fit marker landed: adopt the published model.
				if err := c.recordFit(d, m, prevID, eps, "recovered", rowsAt); err != nil {
					return "failed", kind, err
				}
				return "recovered", kind, nil
			}
		}
		// Charged but never published: finish the fit without paying again.
	}

	refund := func() {
		if dup {
			return // never refund a charge a previous run made
		}
		if rerr := c.cfg.Ledger.RefundIdempotent(d.id, eps, chargeKey); rerr != nil {
			c.logf("curator %s: refund failed: %v", d.id, rerr)
		}
	}

	ctx := context.Background()
	par := 2
	if c.cfg.Acquire != nil {
		got, release, aerr := c.cfg.Acquire(ctx, 2)
		if aerr != nil {
			refund()
			d.mu.Lock()
			d.failedRows = rowsAt
			d.mu.Unlock()
			return "skipped", kind, aerr
		}
		par = got
		defer release()
	}

	var m *privbayes.Model
	if snap != nil {
		mode := core.ModeGeneral
		if prevFit.K >= 0 {
			mode = core.ModeBinary
		}
		m, err = core.RefitCountsContext(ctx, d.attrs, snap.Source(), prevFit.Network, prevFit.K, core.Options{
			Epsilon:     eps,
			Mode:        mode,
			Score:       score.Function(prevFit.Score),
			Parallelism: par,
			Rand:        c.refitRand(),
		})
	} else {
		src := rowLogSource(d.path, d.attrs, c.cfg.ChunkRows, rowsAt)
		opts := append(append([]privbayes.Option(nil), c.cfg.FitOptions...),
			privbayes.WithEpsilon(eps), privbayes.WithParallelism(par))
		m, err = privbayes.FitScanner(ctx, src, opts...)
	}
	if err != nil {
		refund()
		d.mu.Lock()
		d.failedRows = rowsAt
		d.mu.Unlock()
		return "failed", kind, err
	}

	if c.cfg.Publish != nil {
		if perr := c.cfg.Publish(modelID, m, eps); perr != nil {
			refund()
			d.mu.Lock()
			d.failedRows = rowsAt
			d.mu.Unlock()
			return "failed", kind, perr
		}
	}
	if err := c.recordFit(d, m, modelID, eps, kind, rowsAt); err != nil {
		// The model is published and paid for; the marker will be
		// rewritten by recovery (idempotent charge + Lookup).
		return "failed", kind, err
	}
	return "published", kind, nil
}

// recordFit writes the durable fit marker and installs the new fit
// state: marker, refreshed count store, staleness.
func (c *Curator) recordFit(d *curated, m *privbayes.Model, modelID string, eps float64, kind string, rowsAt int64) error {
	fm := &fitMarker{
		ModelID:  modelID,
		Epsilon:  eps,
		Rows:     rowsAt,
		Kind:     kind,
		K:        m.K,
		Score:    int(m.Score),
		Network:  m.Network,
		UnixNano: nowUnixNano(),
	}
	payload, err := marshalFitMarker(fm)
	if err != nil {
		return err
	}

	// Install the new network's store before appends resume counting:
	// swap in an empty registered store under the lock, then seed it
	// from the log up to the swap point — concurrent appends accumulate
	// into the swapped store and merge exactly.
	d.mu.Lock()
	if err := d.log.Append(payload); err != nil {
		d.mu.Unlock()
		return err
	}
	d.fit = fm
	if d.rows == rowsAt {
		d.dirtySince = time.Time{}
	} else {
		d.dirtySince = time.Now()
	}
	needSeed := false
	var seedRows int64
	if d.store == nil || !sameNetwork(d.store, fm.Network, d.attrs) {
		st, serr := registeredStore(d.attrs, fm.Network)
		if serr != nil {
			d.store = nil
			d.mu.Unlock()
			return serr
		}
		d.store = st
		seedRows = d.rows
		needSeed = seedRows > 0
	}
	d.mu.Unlock()

	if needSeed {
		side, serr := c.buildStore(d, fm.Network, seedRows)
		if serr == nil {
			serr = d.store.Merge(side)
		}
		if serr != nil {
			c.logf("curator %s: count store seed failed, next refit will be cold: %v", d.id, serr)
			d.mu.Lock()
			d.store = nil
			d.mu.Unlock()
		}
	}
	return nil
}

// sameNetwork reports whether the store's registered tables serve the
// network (it was built by registeredStore for an equal network).
func sameNetwork(st *counts.Store, net core.Network, attrs []dataset.Attribute) bool {
	for _, pair := range net.Pairs {
		if st.CountTable(pair.Parents, pair.X) == nil {
			return false
		}
	}
	_, tables := st.Cells()
	return tables == len(net.Pairs)
}

// Close stops background work and closes every row log. In-flight
// refits run to completion first.
func (c *Curator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stop)
	ds := make([]*curated, 0, len(c.datasets))
	for _, d := range c.datasets {
		ds = append(ds, d)
	}
	c.mu.Unlock()
	c.wg.Wait()
	var first error
	for _, d := range ds {
		d.mu.Lock()
		err := d.log.Close()
		d.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
