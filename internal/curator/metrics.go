package curator

import "privbayes/internal/telemetry"

// Metrics is the curator's telemetry catalog. Every accessor is
// nil-safe: a nil *Metrics (telemetry disabled) turns instrumentation
// into no-ops, matching the registry's own nil-safety.
type Metrics struct {
	r             *telemetry.Registry
	rowsIngested  *telemetry.Counter
	appendBatches *telemetry.CounterVec // outcome: appended|duplicate|rejected
	refits        *telemetry.CounterVec // outcome: published|recovered|failed|skipped
	refitSeconds  *telemetry.HistogramVec
}

// NewMetrics registers the curator counter and histogram families on r.
// The gauges (dataset count, staleness, count-store cells) are sampled
// from the live curator and attach when New wires a curator to this
// catalog. A nil registry returns a usable catalog whose instruments
// all no-op.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		r: r,
		rowsIngested: r.Counter("privbayes_curator_rows_ingested_total",
			"Rows durably appended to curated row logs."),
		appendBatches: r.CounterVec("privbayes_curator_append_batches_total",
			"Append batches by outcome.", "outcome"),
		refits: r.CounterVec("privbayes_curator_refits_total",
			"Refit attempts by outcome.", "outcome"),
		refitSeconds: r.HistogramVec("privbayes_curator_refit_duration_seconds",
			"Refit latency by kind (cold vs incremental).",
			telemetry.ExponentialBuckets(0.01, 2, 14), "kind"),
	}
}

func (m *Metrics) enabled() bool { return m != nil }

// observe registers the curator-backed gauges.
func (m *Metrics) observe(c *Curator) {
	if !m.enabled() || m.r == nil {
		return
	}
	m.r.GaugeFunc("privbayes_curator_datasets",
		"Curated datasets currently open.",
		func() float64 { return float64(c.Len()) })
	m.r.GaugeFunc("privbayes_curator_staleness_seconds",
		"Age in seconds of the oldest unfitted append across curated datasets (0 when all models are fresh).",
		c.StalenessSeconds)
	m.r.GaugeFunc("privbayes_curator_count_store_cells",
		"Live incremental count-table cells across curated datasets.",
		func() float64 { return float64(c.StoreCells()) })
}

func (m *Metrics) batch(outcome string, rows int) {
	if !m.enabled() {
		return
	}
	m.appendBatches.With(outcome).Inc()
	if outcome == "appended" {
		m.rowsIngested.Add(float64(rows))
	}
}

func (m *Metrics) refit(outcome, kind string, seconds float64) {
	if !m.enabled() {
		return
	}
	m.refits.With(outcome).Inc()
	if outcome == "published" || outcome == "failed" {
		m.refitSeconds.With(kind).Observe(seconds)
	}
}
