package curator

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"privbayes"
	"privbayes/internal/accountant"
	"privbayes/internal/core"
	"privbayes/internal/counts"
	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
	"privbayes/internal/telemetry"
)

// binData generates correlated binary rows, the curator test workload.
func binData(n int, seed int64) *dataset.Dataset {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1"}),
		dataset.NewCategorical("b", []string{"0", "1"}),
		dataset.NewCategorical("c", []string{"0", "1"}),
		dataset.NewCategorical("d", []string{"0", "1"}),
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, len(attrs))
	for i := 0; i < n; i++ {
		rec[0] = uint16(rng.Intn(2))
		rec[1] = rec[0]
		if rng.Float64() < 0.15 {
			rec[1] = 1 - rec[1]
		}
		rec[2] = rec[1]
		if rng.Float64() < 0.2 {
			rec[2] = 1 - rec[2]
		}
		rec[3] = uint16(rng.Intn(2))
		ds.Append(rec)
	}
	return ds
}

// publisher collects published models and signals each publication.
type publisher struct {
	mu     sync.Mutex
	models map[string]*privbayes.Model
	eps    map[string]float64
	ch     chan string
}

func newPublisher() *publisher {
	return &publisher{models: map[string]*privbayes.Model{}, eps: map[string]float64{}, ch: make(chan string, 16)}
}

func (p *publisher) publish(id string, m *privbayes.Model, eps float64) error {
	p.mu.Lock()
	p.models[id] = m
	p.eps[id] = eps
	p.mu.Unlock()
	p.ch <- id
	return nil
}

func (p *publisher) lookup(id string) (*privbayes.Model, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.models[id]
	return m, ok
}

func (p *publisher) wait(t *testing.T) string {
	t.Helper()
	select {
	case id := <-p.ch:
		return id
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for a refit to publish")
		return ""
	}
}

func modelJSON(t *testing.T, m *privbayes.Model, eps float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, eps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestRecoveryAndIdempotency(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ds := binData(1000, 1)
	if err := c.Create("adult", ds.Attrs()); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("adult", ds.Attrs()); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: got %v, want ErrExists", err)
	}
	if _, err := c.Append("nope", "", ds); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append to unknown dataset: got %v, want ErrNotFound", err)
	}
	if err := c.Create("../evil", ds.Attrs()); err == nil {
		t.Fatal("path-traversal id accepted")
	}

	// Keyed appends are idempotent; unkeyed ones are not.
	if dup, err := c.Append("adult", "batch-1", ds.Slice(0, 400)); err != nil || dup {
		t.Fatalf("first keyed append: dup=%v err=%v", dup, err)
	}
	if dup, err := c.Append("adult", "batch-1", ds.Slice(0, 400)); err != nil || !dup {
		t.Fatalf("replayed keyed append: dup=%v err=%v, want duplicate", dup, err)
	}
	if dup, err := c.Append("adult", "", ds.Slice(400, 700)); err != nil || dup {
		t.Fatalf("unkeyed append: dup=%v err=%v", dup, err)
	}
	other := dataset.New([]dataset.Attribute{dataset.NewCategorical("x", []string{"0", "1"})})
	other.Append([]uint16{0})
	if _, err := c.Append("adult", "", other); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("mismatched schema: got %v, want ErrSchemaMismatch", err)
	}
	st, err := c.Status("adult")
	if err != nil || st.Rows != 700 {
		t.Fatalf("status: %+v err=%v, want 700 rows", st, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn tail: garbage after the last acknowledged record.
	path := filepath.Join(dir, "adult.rows")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("\x99\x00\x00\x00torn"))
	f.Close()

	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st, err = c2.Status("adult")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 700 {
		t.Fatalf("recovered %d rows, want 700 (acknowledged appends survive, torn tail vanishes)", st.Rows)
	}
	if dup, err := c2.Append("adult", "batch-1", ds.Slice(0, 400)); err != nil || !dup {
		t.Fatalf("keyed replay after recovery: dup=%v err=%v, want duplicate", dup, err)
	}
	if st.StalenessSeconds < 0 {
		t.Fatal("negative staleness")
	}
}

// TestRefitColdThenIncremental drives the full curation loop: ingest
// past the row trigger fits a cold model from the row log; further
// ingest triggers an incremental refit from the maintained count store.
// Both are deterministic given the seeds, so each published model is
// checked byte-for-byte against its reference fit.
func TestRefitColdThenIncremental(t *testing.T) {
	dir := t.TempDir()
	led := accountant.New(100)
	pub := newPublisher()
	reg := telemetry.NewRegistry()
	c, err := New(Config{
		Dir:          dir,
		Ledger:       led,
		RefitEpsilon: 0.9,
		RefitRows:    1000,
		ChunkRows:    256,
		FitOptions:   []privbayes.Option{privbayes.WithSeed(7), privbayes.WithDegree(2)},
		Seed:         func() int64 { return 21 },
		Publish:      pub.publish,
		Lookup:       pub.lookup,
		Metrics:      NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ds := binData(3000, 3)
	if err := c.Create("adult", ds.Attrs()); err != nil {
		t.Fatal(err)
	}
	// 900 rows: below the trigger, nothing publishes.
	if _, err := c.Append("adult", "b0", ds.Slice(0, 900)); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-pub.ch:
		t.Fatalf("refit %s published below the row trigger", id)
	case <-time.After(200 * time.Millisecond):
	}
	// Crossing 1000 rows triggers the cold fit over the row log.
	if _, err := c.Append("adult", "b1", ds.Slice(900, 1500)); err != nil {
		t.Fatal(err)
	}
	coldID := pub.wait(t)
	if coldID != "adult-refit-1500" {
		t.Fatalf("cold refit model id %q, want adult-refit-1500", coldID)
	}
	coldM, _ := pub.lookup(coldID)
	wantCold, err := privbayes.Fit(context.Background(), ds.Slice(0, 1500),
		privbayes.WithSeed(7), privbayes.WithDegree(2), privbayes.WithEpsilon(0.9), privbayes.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelJSON(t, coldM, 0.9), modelJSON(t, wantCold, 0.9)) {
		t.Error("cold refit differs from the reference out-of-core fit")
	}
	if got := led.Get("adult").Spent; got != 0.9 {
		t.Fatalf("ε spent after cold refit: %g, want 0.9", got)
	}

	// Another 1000+ rows: the count store is maintained incrementally,
	// so this refit reuses the cold network and only redraws noisy
	// conditionals over the full 3000 rows.
	if _, err := c.Append("adult", "b2", ds.Slice(1500, 3000)); err != nil {
		t.Fatal(err)
	}
	incID := pub.wait(t)
	if incID != "adult-refit-3000" {
		t.Fatalf("incremental refit model id %q, want adult-refit-3000", incID)
	}
	incM, _ := pub.lookup(incID)
	if incM.Network.String() != coldM.Network.String() {
		t.Error("incremental refit changed the network structure")
	}
	// Reference: refit from a store accumulated over all 3000 rows.
	refSt := counts.NewStore(ds.Attrs())
	for _, pair := range coldM.Network.Pairs {
		if err := refSt.Register(pair.Parents, []marginal.Var{pair.X}); err != nil {
			t.Fatal(err)
		}
	}
	if err := refSt.Accumulate(ds); err != nil {
		t.Fatal(err)
	}
	wantInc, err := core.RefitCountsContext(context.Background(), ds.Attrs(), refSt.Source(),
		coldM.Network, coldM.K, core.Options{Epsilon: 0.9, Mode: core.ModeBinary,
			Score: score.Function(coldM.Score), Parallelism: 2, Rand: rand.New(rand.NewSource(21))})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelJSON(t, incM, 0.9), modelJSON(t, wantInc, 0.9)) {
		t.Error("incremental refit differs from the reference count-store refit")
	}
	if got := led.Get("adult").Spent; got != 1.8 {
		t.Fatalf("ε spent after two refits: %g, want 1.8", got)
	}
	st, err := c.Status("adult")
	if err != nil {
		t.Fatal(err)
	}
	if st.ModelID != incID || st.FitKind != "incremental" || st.FitRows != 3000 || st.UnfittedRows != 0 {
		t.Fatalf("status after refits: %+v", st)
	}
	if st.StalenessSeconds != 0 {
		t.Fatalf("staleness %g after covering fit, want 0", st.StalenessSeconds)
	}
	if c.StoreCells() == 0 {
		t.Error("count store reports zero cells after refits")
	}
	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"privbayes_curator_rows_ingested_total", "privbayes_curator_refits_total",
		"privbayes_curator_count_store_cells", "privbayes_curator_staleness_seconds"} {
		if !bytes.Contains(text.Bytes(), []byte(fam)) {
			t.Errorf("metric family %s missing from exposition", fam)
		}
	}
}

// TestRefitChargeIdempotency covers the two crash windows of a refit:
// charged-but-unpublished (finish the fit without paying again) and
// charged-and-published-but-unmarked (adopt the published model). In
// both, total ε spend stays exactly one refit's ε.
func TestRefitChargeIdempotency(t *testing.T) {
	ds := binData(1200, 5)

	t.Run("charged-not-published", func(t *testing.T) {
		led := accountant.New(100)
		pub := newPublisher()
		// A previous incarnation charged for the refit at 1200 rows and
		// died before publishing.
		if _, _, err := led.ChargeIdempotent("adult", 0.9, "curator-adult-1200", "adult-refit-1200"); err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{Dir: t.TempDir(), Ledger: led, RefitEpsilon: 0.9, RefitRows: 1000,
			FitOptions: []privbayes.Option{privbayes.WithSeed(7)},
			Publish:    pub.publish, Lookup: pub.lookup})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Create("adult", ds.Attrs()); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Append("adult", "", ds); err != nil {
			t.Fatal(err)
		}
		id := pub.wait(t)
		if id != "adult-refit-1200" {
			t.Fatalf("published %q, want adult-refit-1200", id)
		}
		if got := led.Get("adult").Spent; got != 0.9 {
			t.Fatalf("ε spent %g, want 0.9 — the fit must reuse the crashed run's charge", got)
		}
	})

	t.Run("published-not-marked", func(t *testing.T) {
		led := accountant.New(100)
		pub := newPublisher()
		prior, err := privbayes.Fit(context.Background(), ds, privbayes.WithEpsilon(0.9), privbayes.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		pub.models["adult-refit-1200"] = prior
		if _, _, err := led.ChargeIdempotent("adult", 0.9, "curator-adult-1200", "adult-refit-1200"); err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		c, err := New(Config{Dir: dir, Ledger: led, RefitEpsilon: 0.9, RefitRows: 1000,
			Publish: pub.publish, Lookup: pub.lookup})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Create("adult", ds.Attrs()); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Append("adult", "", ds); err != nil {
			t.Fatal(err)
		}
		// The recovered path writes a marker without re-publishing, so
		// poll the status instead of the publish channel.
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, err := c.Status("adult")
			if err != nil {
				t.Fatal(err)
			}
			if st.ModelID != "" {
				if st.ModelID != "adult-refit-1200" || st.FitKind != "recovered" {
					t.Fatalf("recovered status: %+v", st)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("timed out waiting for the recovered marker")
			}
			time.Sleep(5 * time.Millisecond)
		}
		select {
		case id := <-pub.ch:
			t.Fatalf("model %s re-published during recovery", id)
		default:
		}
		if got := led.Get("adult").Spent; got != 0.9 {
			t.Fatalf("ε spent %g, want 0.9 — recovery must never double-charge", got)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		// The adopted network must also survive restart: the rebuilt
		// store serves an incremental refit.
		c2, err := New(Config{Dir: dir, Ledger: led, RefitEpsilon: 0.9, RefitRows: 100,
			Seed: func() int64 { return 9 }, Publish: pub.publish, Lookup: pub.lookup})
		if err != nil {
			t.Fatal(err)
		}
		defer c2.Close()
		extra := binData(200, 99)
		if _, err := c2.Append("adult", "", extra); err != nil {
			t.Fatal(err)
		}
		id := pub.wait(t)
		if id != "adult-refit-1400" {
			t.Fatalf("post-restart refit id %q, want adult-refit-1400", id)
		}
		st, _ := c2.Status("adult")
		if st.FitKind != "incremental" {
			t.Fatalf("post-restart refit kind %q, want incremental (store rebuilt from the log)", st.FitKind)
		}
		if got := led.Get("adult").Spent; got != 1.8 {
			t.Fatalf("ε spent %g, want 1.8", got)
		}
	})
}

// TestRefitBudgetExhausted: a refit whose charge is refused spends
// nothing, publishes nothing, and re-arms only on new appends.
func TestRefitBudgetExhausted(t *testing.T) {
	led := accountant.New(0.5) // below RefitEpsilon
	pub := newPublisher()
	c, err := New(Config{Dir: t.TempDir(), Ledger: led, RefitEpsilon: 0.9, RefitRows: 100,
		Publish: pub.publish, Lookup: pub.lookup})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := binData(300, 2)
	if err := c.Create("adult", ds.Attrs()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append("adult", "", ds); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-pub.ch:
		t.Fatalf("refit %s published over budget", id)
	case <-time.After(300 * time.Millisecond):
	}
	if got := led.Get("adult").Spent; got != 0 {
		t.Fatalf("ε spent %g on a refused refit, want 0", got)
	}
	st, _ := c.Status("adult")
	if st.ModelID != "" {
		t.Fatalf("model %q exists despite exhausted budget", st.ModelID)
	}
}

// TestRowLogScanMatchesBatches: rows streamed back out of the log —
// whatever the append batching — equal the ingested row sequence, and a
// capped scan stops exactly at the requested snapshot.
func TestRowLogScanMatchesBatches(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ds := binData(2500, 11)
	if err := c.Create("d", ds.Attrs()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for lo := 0; lo < ds.N(); {
		hi := lo + 1 + rng.Intn(400)
		if hi > ds.N() {
			hi = ds.N()
		}
		if _, err := c.Append("d", fmt.Sprintf("k%d", lo), ds.Slice(lo, hi)); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		maxRows int64
		want    int
	}{{0, 2500}, {1700, 1700}} {
		src := rowLogSource(filepath.Join(dir, "d.rows"), ds.Attrs(), 333, tc.maxRows)
		sc, err := src.Open()
		if err != nil {
			t.Fatal(err)
		}
		row := 0
		for {
			chunk, err := sc.Next()
			if err != nil {
				break
			}
			for r := 0; r < chunk.N(); r++ {
				for col := 0; col < chunk.D(); col++ {
					if chunk.Value(r, col) != ds.Value(row, col) {
						t.Fatalf("maxRows=%d: row %d col %d: got %d, want %d",
							tc.maxRows, row, col, chunk.Value(r, col), ds.Value(row, col))
					}
				}
				row++
			}
		}
		sc.Close()
		if row != tc.want {
			t.Fatalf("maxRows=%d: scanned %d rows, want %d", tc.maxRows, row, tc.want)
		}
	}
}

// TestStalenessTrigger: with only the staleness trigger configured, a
// quiet dataset refits once its unfitted rows age past the threshold.
func TestStalenessTrigger(t *testing.T) {
	led := accountant.New(100)
	pub := newPublisher()
	c, err := New(Config{Dir: t.TempDir(), Ledger: led, RefitEpsilon: 0.9,
		RefitMaxStaleness: 150 * time.Millisecond, PollInterval: 25 * time.Millisecond,
		Publish: pub.publish, Lookup: pub.lookup})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := binData(200, 8)
	if err := c.Create("d", ds.Attrs()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append("d", "", ds); err != nil {
		t.Fatal(err)
	}
	id := pub.wait(t)
	if id != "d-refit-200" {
		t.Fatalf("staleness refit id %q, want d-refit-200", id)
	}
}
