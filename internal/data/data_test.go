package data

import (
	"math"
	"testing"

	"privbayes/internal/infotheory"
	"privbayes/internal/marginal"
)

// Table 5 of the paper: cardinality, dimensionality and total domain
// size of the four evaluation datasets.
func TestSpecsMatchTable5(t *testing.T) {
	want := []struct {
		name    string
		n, d    int
		minLog2 float64
		maxLog2 float64
	}{
		{"NLTCS", 21574, 16, 16, 16},
		{"ACS", 47461, 23, 23, 23},
		{"Adult", 45222, 15, 45, 55},  // paper: ≈ 2^52
		{"BR2000", 38000, 14, 30, 36}, // paper: ≈ 2^32
	}
	specs := Specs()
	if len(specs) != len(want) {
		t.Fatalf("got %d specs", len(specs))
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name || s.N != w.n {
			t.Errorf("spec %d: %s/%d, want %s/%d", i, s.Name, s.N, w.name, w.n)
		}
		attrs := s.Attrs()
		if len(attrs) != w.d {
			t.Errorf("%s: %d attributes, want %d", w.name, len(attrs), w.d)
		}
		var log2 float64
		for _, a := range attrs {
			log2 += math.Log2(float64(a.Size()))
		}
		if log2 < w.minLog2 || log2 > w.maxLog2 {
			t.Errorf("%s: domain 2^%.1f outside [%v, %v]", w.name, log2, w.minLog2, w.maxLog2)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("NLTCS"); !ok {
		t.Error("NLTCS missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name should fail")
	}
}

func TestGenerationDeterministic(t *testing.T) {
	spec, _ := ByName("NLTCS")
	a := spec.GenerateN(200)
	b := spec.GenerateN(200)
	for r := 0; r < 200; r++ {
		for c := 0; c < a.D(); c++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("generation not deterministic at (%d,%d)", r, c)
			}
		}
	}
}

func TestGenerateNPrefixProperty(t *testing.T) {
	// Same ground truth: a shorter generation is a prefix of a longer
	// one (the RNG stream is consumed in row order).
	spec, _ := ByName("ACS")
	short := spec.GenerateN(50)
	long := spec.GenerateN(100)
	for r := 0; r < 50; r++ {
		for c := 0; c < short.D(); c++ {
			if short.Value(r, c) != long.Value(r, c) {
				t.Fatalf("row %d differs between n=50 and n=100 generations", r)
			}
		}
	}
}

// The ground truth must actually contain correlations — otherwise the
// network-learning experiments are vacuous.
func TestGeneratedDataHasCorrelations(t *testing.T) {
	for _, name := range []string{"NLTCS", "ACS", "Adult", "BR2000"} {
		spec, _ := ByName(name)
		ds := spec.GenerateN(8000)
		best := 0.0
		for i := 0; i < ds.D(); i++ {
			for j := i + 1; j < ds.D(); j++ {
				joint := marginal.Materialize(ds, []marginal.Var{{Attr: i}, {Attr: j}})
				if mi := infotheory.MutualInformationSplit(joint); mi > best {
					best = mi
				}
			}
		}
		if best < 0.05 {
			t.Errorf("%s: strongest pairwise MI = %v, want >= 0.05", name, best)
		}
	}
}

// Hierarchies in every schema must be internally consistent (covered
// codes, refinement across levels) — NewHierarchy panics otherwise, so
// building the schemas is itself the assertion; here we additionally
// check every taxonomy level shrinks the domain.
func TestSchemasHierarchiesShrink(t *testing.T) {
	for _, spec := range Specs() {
		for _, a := range spec.Attrs() {
			if a.Hierarchy == nil {
				continue
			}
			for lvl := 1; lvl < a.Height(); lvl++ {
				if a.SizeAt(lvl) >= a.SizeAt(lvl-1) {
					t.Errorf("%s/%s: level %d size %d does not shrink from %d",
						spec.Name, a.Name, lvl, a.SizeAt(lvl), a.SizeAt(lvl-1))
				}
			}
		}
	}
}

// The classification target attributes must exist with binary-friendly
// positive classes; checked here so workload tests cannot drift from
// schema changes.
func TestClassificationTargetsPresent(t *testing.T) {
	targets := map[string][]string{
		"NLTCS":  {"outside", "traveling", "bathing", "money"},
		"ACS":    {"dwelling", "mortgage", "multigen", "school"},
		"Adult":  {"sex", "salary", "education", "marital"},
		"BR2000": {"religion", "car", "children", "age"},
	}
	for name, names := range targets {
		spec, _ := ByName(name)
		attrs := spec.Attrs()
		for _, want := range names {
			found := false
			for _, a := range attrs {
				if a.Name == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: target attribute %q missing", name, want)
			}
		}
	}
}

func TestGenerateFullCardinality(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cardinality generation in -short mode")
	}
	spec, _ := ByName("NLTCS")
	ds := spec.Generate()
	if ds.N() != spec.N {
		t.Errorf("N = %d, want %d", ds.N(), spec.N)
	}
}
