// Package data generates the four evaluation datasets. The paper uses
// NLTCS, an IPUMS ACS extract, the UCI Adult extract and a Brazilian
// census extract (BR2000); none is redistributable here, so this package
// builds seeded synthetic equivalents with the same shape as Table 5 —
// matching cardinality, dimensionality and per-attribute domain sizes —
// sampled from fixed ground-truth Bayesian networks of degree 2 so the
// attributes carry genuine low-dimensional correlation structure. See
// DESIGN.md, "Substitutions".
package data

import (
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/dp"
)

// GroundTruth is a fixed generative Bayesian network with fully known
// structure and conditionals, used to sample synthetic source datasets.
// Because the structure is known, downstream evaluation (see
// internal/quality) can score a learned network's edge recovery against
// it — something no real-world dataset permits.
type GroundTruth struct {
	attrs   []dataset.Attribute
	order   []int   // topological sampling order over attribute indices
	parents [][]int // parents[i] = attribute indices, already sampled
	conds   [][]float64
	// conds[i] is laid out as blocks of |dom(X_order[i])| per parent
	// configuration (row-major over parents in parents[i] order).
}

// NewGroundTruth builds a random degree-maxParents network in a seeded
// way: the attribute order is shuffled, each attribute receives up to
// maxParents random earlier attributes as parents, and every conditional
// block is drawn from a symmetric Dirichlet(alpha). Small alpha yields
// spiky conditionals, i.e. strong correlations.
func NewGroundTruth(attrs []dataset.Attribute, maxParents int, alpha float64, rng *rand.Rand) *GroundTruth {
	d := len(attrs)
	g := &GroundTruth{attrs: attrs, order: rng.Perm(d)}
	g.parents = make([][]int, d)
	g.conds = make([][]float64, d)
	for pos, a := range g.order {
		np := maxParents
		if pos < np {
			np = pos
		}
		if np > 0 {
			// Choose np distinct earlier attributes.
			perm := rng.Perm(pos)[:np]
			ps := make([]int, np)
			for i, j := range perm {
				ps[i] = g.order[j]
			}
			g.parents[pos] = ps
		}
		blocks := 1
		for _, p := range g.parents[pos] {
			blocks *= attrs[p].Size()
		}
		xDim := attrs[a].Size()
		cond := make([]float64, blocks*xDim)
		for b := 0; b < blocks; b++ {
			dp.Dirichlet(rng, alpha, cond[b*xDim:(b+1)*xDim])
		}
		g.conds[pos] = cond
	}
	return g
}

// Attrs returns the network's schema.
func (g *GroundTruth) Attrs() []dataset.Attribute { return g.attrs }

// Edges returns the network's directed edge set as (parent, child)
// attribute-index pairs, in a deterministic order.
func (g *GroundTruth) Edges() [][2]int {
	var edges [][2]int
	for pos, child := range g.order {
		for _, p := range g.parents[pos] {
			edges = append(edges, [2]int{p, child})
		}
	}
	return edges
}

// Sample draws n records by ancestral sampling.
func (g *GroundTruth) Sample(n int, rng *rand.Rand) *dataset.Dataset {
	out := dataset.NewWithCapacity(g.attrs, n)
	d := len(g.attrs)
	rec := make([]uint16, d)
	vals := make([]int, d)
	for r := 0; r < n; r++ {
		for pos, a := range g.order {
			xDim := g.attrs[a].Size()
			block := 0
			for _, p := range g.parents[pos] {
				block = block*g.attrs[p].Size() + vals[p]
			}
			cond := g.conds[pos][block*xDim : (block+1)*xDim]
			u := rng.Float64()
			var cum float64
			x := xDim - 1
			for v, pr := range cond {
				cum += pr
				if u < cum {
					x = v
					break
				}
			}
			vals[a] = x
		}
		for a := 0; a < d; a++ {
			rec[a] = uint16(vals[a])
		}
		out.Append(rec)
	}
	return out
}

// Spec identifies one of the four evaluation datasets.
type Spec struct {
	Name  string
	N     int // paper cardinality (Table 5)
	Seed  int64
	Alpha float64 // Dirichlet concentration of the ground truth
	build func() []dataset.Attribute
}

// Specs returns the four dataset specifications in the paper's order.
func Specs() []Spec {
	return []Spec{
		{Name: "NLTCS", N: 21574, Seed: 1001, Alpha: 0.3, build: nltcsAttrs},
		{Name: "ACS", N: 47461, Seed: 1002, Alpha: 0.3, build: acsAttrs},
		{Name: "Adult", N: 45222, Seed: 1003, Alpha: 0.25, build: adultAttrs},
		{Name: "BR2000", N: 38000, Seed: 1004, Alpha: 0.25, build: br2000Attrs},
	}
}

// ByName returns the spec with the given name, or false.
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Attrs returns the dataset schema.
func (s Spec) Attrs() []dataset.Attribute { return s.build() }

// Generate samples the dataset at its paper cardinality.
func (s Spec) Generate() *dataset.Dataset { return s.GenerateN(s.N) }

// GenerateN samples n records from the spec's fixed ground truth. The
// ground truth depends only on the seed, so different n values draw from
// the same underlying distribution.
func (s Spec) GenerateN(n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(s.Seed))
	gt := NewGroundTruth(s.build(), 2, s.Alpha, rng)
	return gt.Sample(n, rng)
}
