package data

import "privbayes/internal/dataset"

// nltcsAttrs mirrors the National Long Term Care Survey extract: 16
// binary disability indicators, total domain 2^16 (Table 5). The four
// attributes used as classification targets in Section 6.1 keep the
// paper's names.
func nltcsAttrs() []dataset.Attribute {
	names := []string{
		"outside", "money", "bathing", "traveling",
		"dressing", "eating", "grooming", "inside",
		"cooking", "shopping", "laundry", "light_housework",
		"heavy_housework", "toileting", "bed_transfer", "medicine",
	}
	attrs := make([]dataset.Attribute, len(names))
	for i, n := range names {
		attrs[i] = dataset.NewCategorical(n, []string{"able", "unable"})
	}
	return attrs
}

// acsAttrs mirrors the 2013/2014 ACS (IPUMS-USA) extract: 23 binary
// attributes, total domain 2^23. Classification targets: dwelling,
// mortgage, multigen, school.
func acsAttrs() []dataset.Attribute {
	names := []string{
		"dwelling", "mortgage", "multigen", "school",
		"sex", "employed", "married", "veteran",
		"disability", "medicare", "medicaid", "citizen",
		"english", "moved", "farm", "business",
		"retirement_income", "ss_income", "poverty", "insurance",
		"internet", "vehicle", "grandchildren",
	}
	attrs := make([]dataset.Attribute, len(names))
	for i, n := range names {
		attrs[i] = dataset.NewCategorical(n, []string{"no", "yes"})
	}
	return attrs
}

// adultAttrs mirrors the UCI Adult extract: 15 mixed attributes with a
// total domain around 2^50 (the paper reports ≈2^52). Continuous
// attributes use 16 equi-width bins (footnote 3: b = 16) with the
// automatic binary taxonomy tree; categorical attributes carry taxonomy
// trees derived from common knowledge, as in the paper's released data.
func adultAttrs() []dataset.Attribute {
	workclass := dataset.NewCategorical("workclass", []string{
		"Self-emp-inc", "Self-emp-not-inc", "Federal-gov", "State-gov",
		"Local-gov", "Private", "Without-pay", "Never-worked",
	})
	// Figure 3's tree: self-employed / government / private / unemployed.
	workclass.Hierarchy = dataset.NewHierarchy(8, []int{0, 0, 1, 1, 1, 2, 3, 3})

	education := dataset.NewCategorical("education", []string{
		"Preschool", "1st-4th", "5th-6th", "7th-8th",
		"9th", "10th", "11th", "12th",
		"HS-grad", "Some-college", "Assoc-voc", "Assoc-acdm",
		"Bachelors", "Masters", "Prof-school", "Doctorate",
	})
	// primary / secondary / college / post-secondary, then degree/no-degree.
	education.Hierarchy = dataset.NewHierarchy(16,
		[]int{0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3, 3, 3},
		[]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1},
	)

	marital := dataset.NewCategorical("marital", []string{
		"Never-married", "Married-civ-spouse", "Married-AF-spouse",
		"Married-spouse-absent", "Divorced", "Separated", "Widowed",
	})
	marital.Hierarchy = dataset.NewHierarchy(7, []int{0, 1, 1, 1, 2, 2, 2})

	occupation := dataset.NewCategorical("occupation", []string{
		"Tech-support", "Craft-repair", "Other-service", "Sales",
		"Exec-managerial", "Prof-specialty", "Handlers-cleaners",
		"Machine-op-inspct", "Adm-clerical", "Farming-fishing",
		"Transport-moving", "Priv-house-serv", "Protective-serv",
		"Armed-Forces",
	})
	occupation.Hierarchy = dataset.NewHierarchy(14,
		[]int{0, 1, 2, 0, 0, 0, 1, 1, 0, 1, 1, 2, 2, 2})

	relationship := dataset.NewCategorical("relationship", []string{
		"Wife", "Own-child", "Husband", "Not-in-family",
		"Other-relative", "Unmarried",
	})
	relationship.Hierarchy = dataset.NewHierarchy(6, []int{0, 0, 0, 1, 0, 1})

	race := dataset.NewCategorical("race", []string{
		"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black",
	})
	race.Hierarchy = dataset.NewHierarchy(5, []int{0, 1, 1, 1, 1})

	// 42 countries generalized to 8 regions, then 4 continent groups,
	// in the spirit of the CIA World Factbook tree the paper cites.
	countryNames := make([]string, 42)
	regionOf := make([]int, 42)
	continentOf := make([]int, 42)
	regions := []struct {
		continent int
		count     int
		name      string
	}{
		{0, 6, "NorthAmerica"}, {0, 6, "CentralAmerica"}, {0, 5, "Caribbean"},
		{1, 6, "SouthAmerica"}, {2, 6, "WesternEurope"}, {2, 5, "EasternEurope"},
		{3, 5, "EastAsia"}, {3, 3, "SouthAsia"},
	}
	idx := 0
	for r, reg := range regions {
		for c := 0; c < reg.count; c++ {
			countryNames[idx] = regionName(reg.name, c)
			regionOf[idx] = r
			continentOf[idx] = reg.continent
			idx++
		}
	}
	country := dataset.NewCategorical("country", countryNames)
	country.Hierarchy = dataset.NewHierarchy(42, regionOf, continentOf)

	return []dataset.Attribute{
		dataset.NewContinuous("age", 17, 90, 16),
		workclass,
		dataset.NewContinuous("fnlwgt", 1e4, 1.5e6, 16),
		education,
		dataset.NewContinuous("education_num", 1, 16, 16),
		marital,
		occupation,
		relationship,
		race,
		dataset.NewCategorical("sex", []string{"Female", "Male"}),
		dataset.NewContinuous("capital_gain", 0, 1e5, 16),
		dataset.NewContinuous("capital_loss", 0, 4500, 16),
		dataset.NewContinuous("hours", 1, 99, 16),
		country,
		dataset.NewCategorical("salary", []string{"<=50K", ">50K"}),
	}
}

func regionName(region string, i int) string {
	return region + "-" + string(rune('A'+i))
}

// br2000Attrs mirrors the Brazilian 2000 census extract: 14 mixed
// attributes with total domain around 2^33 (paper: ≈2^32).
// Classification targets: religion, car, children, age.
func br2000Attrs() []dataset.Attribute {
	religion := dataset.NewCategorical("religion", []string{
		"Catholic", "Evangelical", "Protestant", "Spiritist",
		"Afro-Brazilian", "Jewish", "Other", "None",
	})
	religion.Hierarchy = dataset.NewHierarchy(8,
		[]int{0, 0, 0, 1, 1, 1, 1, 2},
		[]int{0, 0, 0, 0, 0, 0, 0, 1},
	)

	stateNames := make([]string, 16)
	stateRegion := make([]int, 16)
	for i := range stateNames {
		stateNames[i] = regionName("State", i)
		stateRegion[i] = i / 4
	}
	state := dataset.NewCategorical("state", stateNames)
	state.Hierarchy = dataset.NewHierarchy(16, stateRegion)

	education := dataset.NewCategorical("education", []string{
		"None", "Primary-incomplete", "Primary", "Secondary-incomplete",
		"Secondary", "Tertiary-incomplete", "Tertiary", "Postgraduate",
	})
	education.Hierarchy = dataset.NewHierarchy(8, []int{0, 0, 0, 1, 1, 2, 2, 2})

	marital := dataset.NewCategorical("marital", []string{
		"Single", "Married", "Divorced", "Widowed",
	})
	marital.Hierarchy = dataset.NewHierarchy(4, []int{0, 1, 0, 0})

	return []dataset.Attribute{
		dataset.NewCategorical("gender", []string{"Female", "Male"}),
		dataset.NewContinuous("age", 0, 96, 16),
		religion,
		dataset.NewCategorical("car", []string{"no", "yes"}),
		dataset.NewContinuous("children", 0, 8, 8),
		marital,
		state,
		education,
		dataset.NewCategorical("employment", []string{
			"Employed", "Unemployed", "Student", "Retired",
		}),
		dataset.NewContinuous("income", 0, 1.6e4, 16),
		dataset.NewCategorical("urban", []string{"rural", "urban"}),
		dataset.NewCategorical("literate", []string{"no", "yes"}),
		dataset.NewContinuous("household", 1, 17, 16),
		dataset.NewCategorical("migrant", []string{"no", "yes"}),
	}
}
