// Package dp implements the two differential-privacy primitives PrivBayes
// relies on — the Laplace mechanism and the exponential mechanism — plus
// a simple sequential-composition budget accountant.
package dp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Laplace draws one Laplace(0, scale) variate using inverse-CDF sampling.
func Laplace(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	if u < 0 {
		return scale * math.Log1p(2*u)
	}
	return -scale * math.Log1p(-2*u)
}

// LaplaceMechanism perturbs each value with Laplace(sensitivity/epsilon)
// noise in place, satisfying epsilon-DP for a query with the given L1
// sensitivity (Definition 2.2).
func LaplaceMechanism(rng *rand.Rand, values []float64, sensitivity, epsilon float64) {
	if epsilon <= 0 {
		panic("dp: LaplaceMechanism requires epsilon > 0")
	}
	b := sensitivity / epsilon
	for i := range values {
		values[i] += Laplace(rng, b)
	}
}

// Exponential samples an index with probability proportional to
// exp(epsilon * score / (2 * sensitivity)), the exponential mechanism of
// McSherry and Talwar (Section 2.1). Scores are shifted by their maximum
// before exponentiation for numerical stability. With epsilon = +Inf the
// call degenerates to argmax, which the harness uses for the NoPrivacy
// reference lines.
func Exponential(rng *rand.Rand, scores []float64, sensitivity, epsilon float64) int {
	if len(scores) == 0 {
		panic("dp: Exponential with no candidates")
	}
	if math.IsInf(epsilon, 1) || sensitivity == 0 {
		best := 0
		for i, s := range scores {
			if s > scores[best] {
				best = i
			}
		}
		return best
	}
	if epsilon <= 0 {
		panic("dp: Exponential requires epsilon > 0")
	}
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	factor := epsilon / (2 * sensitivity)
	weights := make([]float64, len(scores))
	var total float64
	for i, s := range scores {
		w := math.Exp(factor * (s - maxS))
		weights[i] = w
		total += w
	}
	u := rng.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return i
		}
	}
	return len(scores) - 1
}

// ErrBudgetExhausted is returned by Accountant.Spend when a request
// exceeds the remaining budget.
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// Accountant tracks sequential composition of an epsilon budget
// (Theorem 3.2: PrivBayes spends ε1 + ε2 = ε overall).
type Accountant struct {
	total float64
	spent float64
}

// NewAccountant creates an accountant with the given total budget.
func NewAccountant(total float64) *Accountant {
	if total <= 0 {
		panic("dp: accountant requires a positive budget")
	}
	return &Accountant{total: total}
}

// Spend consumes eps from the budget, failing when it would overdraw.
// A tiny relative tolerance absorbs floating-point dust from splitting a
// budget into many equal shares.
func (a *Accountant) Spend(eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("dp: cannot spend non-positive budget %g", eps)
	}
	const tol = 1e-9
	if a.spent+eps > a.total*(1+tol) {
		return fmt.Errorf("%w: spent %g + %g > total %g", ErrBudgetExhausted, a.spent, eps, a.total)
	}
	a.spent += eps
	return nil
}

// Spent returns the budget consumed so far.
func (a *Accountant) Spent() float64 { return a.spent }

// Remaining returns the unused budget (never negative).
func (a *Accountant) Remaining() float64 {
	r := a.total - a.spent
	if r < 0 {
		return 0
	}
	return r
}

// Total returns the overall budget.
func (a *Accountant) Total() float64 { return a.total }
