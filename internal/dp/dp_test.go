package dp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestLaplaceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	var mean, absMean, varSum float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, 2)
		mean += x
		absMean += math.Abs(x)
		varSum += x * x
	}
	mean /= n
	absMean /= n
	varSum /= n
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v, want ≈ 0", mean)
	}
	if math.Abs(absMean-2) > 0.05 {
		t.Errorf("E|x| = %v, want ≈ 2 (scale)", absMean)
	}
	if math.Abs(varSum-8) > 0.4 {
		t.Errorf("Var = %v, want ≈ 2b² = 8", varSum)
	}
}

func TestLaplaceMechanism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 50000)
	LaplaceMechanism(rng, vals, 2.0, 0.5) // scale 4
	var absMean float64
	for _, v := range vals {
		absMean += math.Abs(v)
	}
	absMean /= float64(len(vals))
	if math.Abs(absMean-4) > 0.15 {
		t.Errorf("E|noise| = %v, want ≈ sensitivity/ε = 4", absMean)
	}
}

func TestLaplaceMechanismRejectsNonPositiveEpsilon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LaplaceMechanism(rand.New(rand.NewSource(1)), []float64{0}, 1, 0)
}

func TestExponentialArgmaxAtInfiniteEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scores := []float64{0.1, 0.9, 0.5}
	for i := 0; i < 20; i++ {
		if got := Exponential(rng, scores, 1, math.Inf(1)); got != 1 {
			t.Fatalf("infinite epsilon must return argmax, got %d", got)
		}
	}
}

func TestExponentialPrefersHighScores(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	scores := []float64{0, 1}
	// With sensitivity 1 and ε = 4: P(1)/P(0) = exp(2) ≈ 7.39.
	counts := [2]int{}
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[Exponential(rng, scores, 1, 4)]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	want := math.Exp(2)
	if math.Abs(ratio-want)/want > 0.1 {
		t.Errorf("selection ratio = %v, want ≈ %v", ratio, want)
	}
}

func TestExponentialUniformAtTinyEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scores := []float64{0, 100}
	counts := [2]int{}
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[Exponential(rng, scores, 1e9, 1e-9)]++
	}
	frac := float64(counts[0]) / trials
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("tiny ε/huge sensitivity should be ≈ uniform, got %v", frac)
	}
}

func TestExponentialNumericallyStableWithLargeScores(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	scores := []float64{1e6, 1e6 - 1, 1e6 - 2}
	// Must not overflow or return NaN-driven garbage.
	for i := 0; i < 100; i++ {
		got := Exponential(rng, scores, 1, 1)
		if got < 0 || got > 2 {
			t.Fatalf("index out of range: %d", got)
		}
	}
}

func TestExponentialEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Exponential(rand.New(rand.NewSource(1)), nil, 1, 1)
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Spend(0.3); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.7); err != nil {
		t.Fatalf("exact exhaustion should succeed: %v", err)
	}
	if got := a.Remaining(); got > 1e-12 {
		t.Errorf("remaining = %v, want 0", got)
	}
	err := a.Spend(0.01)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("overdraw error = %v, want ErrBudgetExhausted", err)
	}
}

func TestAccountantSplitIntoManyShares(t *testing.T) {
	a := NewAccountant(1.0)
	// 30 equal shares must not trip on floating-point dust.
	for i := 0; i < 30; i++ {
		if err := a.Spend(1.0 / 30); err != nil {
			t.Fatalf("share %d: %v", i, err)
		}
	}
}

func TestAccountantRejectsNonPositive(t *testing.T) {
	a := NewAccountant(1)
	if err := a.Spend(0); err == nil {
		t.Error("spending 0 should error")
	}
	if err := a.Spend(-0.1); err == nil {
		t.Error("spending negative should error")
	}
}

func TestGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []struct{ shape, scale float64 }{{0.5, 1}, {2, 3}, {7.3, 0.5}} {
		const n = 100000
		var mean float64
		for i := 0; i < n; i++ {
			mean += Gamma(rng, c.shape, c.scale)
		}
		mean /= n
		want := c.shape * c.scale
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ≈ %v", c.shape, c.scale, mean, want)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	out := make([]float64, 7)
	for trial := 0; trial < 100; trial++ {
		Dirichlet(rng, 0.3, out)
		var sum float64
		for _, v := range out {
			if v < 0 {
				t.Fatal("negative Dirichlet component")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sum = %v", sum)
		}
	}
}

func TestDirichletSmallAlphaIsSpiky(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	out := make([]float64, 10)
	spiky := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		Dirichlet(rng, 0.1, out)
		for _, v := range out {
			if v > 0.5 {
				spiky++
				break
			}
		}
	}
	if spiky < trials/2 {
		t.Errorf("α = 0.1 should usually concentrate mass; spiky %d/%d", spiky, trials)
	}
}
