package dp

import (
	"math"
	"math/rand"
)

// Gamma draws one Gamma(shape, scale) variate. Shapes >= 1 use the
// Marsaglia–Tsang squeeze method; shapes in (0, 1) use the boost
// Gamma(a) = Gamma(a+1) · U^(1/a). PrivateERM's objective perturbation
// samples its noise-vector norm from a Gamma distribution, and the
// synthetic data generators use Gamma draws to build Dirichlet
// conditionals.
func Gamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("dp: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Dirichlet fills out with one draw from a symmetric Dirichlet(alpha)
// distribution of dimension len(out).
func Dirichlet(rng *rand.Rand, alpha float64, out []float64) {
	var sum float64
	for i := range out {
		out[i] = Gamma(rng, alpha, 1)
		sum += out[i]
	}
	if sum <= 0 {
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}
