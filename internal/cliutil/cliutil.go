// Package cliutil gives the repo's binaries one consistent command-line
// surface: a shared -version flag, a uniform -help header, and a single
// place where the tool version lives. Every cmd/ main calls
// cliutil.Parse instead of flag.Parse.
package cliutil

import (
	"flag"
	"fmt"
	"os"
)

// Version is the toolchain-wide version stamp reported by every binary.
const Version = "0.3.0"

// Parse registers the shared -version flag, installs a uniform usage
// header ("name — synopsis" followed by the binary's flag defaults),
// and parses os.Args. It must be called after the binary's own flags
// are registered, in place of flag.Parse. -version prints one line and
// exits 0.
func Parse(name, synopsis string) {
	version := flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "%s — %s\n\nUsage: %s [flags]\n\nFlags:\n", name, synopsis, name)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Printf("%s %s (privbayes)\n", name, Version)
		os.Exit(0)
	}
}
