// Package experiment regenerates every evaluation table and figure of
// the paper (Section 6). Each figure is a set of panels; each panel is a
// set of series; each series is a curve of (x, metric) points averaged
// over repeated runs with distinct seeds. Results stream to a writer as
// CSV rows: figure,panel,series,x,value.
package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"privbayes/internal/core"
	"privbayes/internal/data"
	"privbayes/internal/dataset"
	"privbayes/internal/score"
)

// EpsGrid is the paper's privacy-budget grid.
var EpsGrid = []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6}

// BetaGrid is the β grid of Figure 9.
var BetaGrid = []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}

// ThetaGrid is the θ grid of Figure 10.
var ThetaGrid = []float64{0.5, 1, 2, 3, 4, 6, 8, 12}

// Config controls a reproduction run. The zero value is not usable; use
// DefaultConfig.
type Config struct {
	// Repeats averages each point over this many seeded runs. The paper
	// uses 100; the default keeps the harness interactive.
	Repeats int
	// N truncates every dataset to at most N rows (0 = the paper's full
	// cardinality from Table 5).
	N int
	// Eps overrides the ε grid when non-empty.
	Eps []float64
	// MaxQuerySubsets samples the query set Qα during evaluation when
	// the full set is larger (0 = evaluate every query, as the paper
	// does).
	MaxQuerySubsets int
	// MaxK caps the binary-mode network degree (see core.Options.MaxK).
	MaxK int
	// Heavy enables the full-domain baselines (Contingency, MWEM) on
	// ACS, whose 2^23-cell histograms dominate runtime.
	Heavy bool
	// Parallelism bounds the worker pool of every PrivBayes run in the
	// battery (see core.Options.Parallelism). <= 0 uses all cores; 1
	// forces the serial code paths.
	Parallelism int
	// Seed is the base seed; repeat r of any experiment derives its
	// generator from Seed and r, so runs are reproducible.
	Seed int64
	// Out, when non-nil, receives CSV rows as points are produced.
	Out io.Writer
}

// DefaultConfig returns the settings used by cmd/experiments.
func DefaultConfig() Config {
	return Config{
		Repeats:         3,
		MaxQuerySubsets: 400,
		MaxK:            5,
		Seed:            42,
	}
}

func (c Config) eps() []float64 {
	if len(c.Eps) > 0 {
		return c.Eps
	}
	return EpsGrid
}

func (c Config) rng(labels ...interface{}) *rand.Rand {
	h := int64(1469598103934665603)
	for _, l := range labels {
		for _, b := range fmt.Sprint(l) {
			h ^= int64(b)
			h *= 1099511628211
		}
	}
	return rand.New(rand.NewSource(c.Seed ^ h))
}

// Point is one measured value.
type Point struct {
	Figure string
	Panel  string
	Series string
	X      float64
	Value  float64
}

// Result collects the points of one figure run.
type Result struct {
	Figure string
	Points []Point
}

// WriteCSV writes all points as CSV with a header row.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,panel,series,x,value"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%g,%.6f\n", p.Figure, p.Panel, p.Series, p.X, p.Value); err != nil {
			return err
		}
	}
	return nil
}

type collector struct {
	mu     sync.Mutex
	cfg    *Config
	figure string
	points []Point
}

func (c *collector) add(panel, series string, x, value float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.points = append(c.points, Point{Figure: c.figure, Panel: panel, Series: series, X: x, Value: value})
	if c.cfg.Out != nil {
		fmt.Fprintf(c.cfg.Out, "%s,%s,%s,%g,%.6f\n", c.figure, panel, series, x, value)
	}
}

// datasetCache avoids regenerating the (deterministic) synthetic source
// datasets for every panel.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*dataset.Dataset{}
)

func sourceData(name string, n int) (*dataset.Dataset, error) {
	spec, ok := data.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown dataset %q", name)
	}
	if n <= 0 || n > spec.N {
		n = spec.N
	}
	key := fmt.Sprintf("%s/%d", name, n)
	dsMu.Lock()
	defer dsMu.Unlock()
	if ds, ok := dsCache[key]; ok {
		return ds, nil
	}
	ds := spec.GenerateN(n)
	dsCache[key] = ds
	return ds, nil
}

// isBinary reports whether every attribute of the dataset is binary, in
// which case the SIGMOD'14 pipeline (ModeBinary + score F) is the
// paper's default.
func isBinary(ds *dataset.Dataset) bool {
	for i := 0; i < ds.D(); i++ {
		if ds.Attr(i).Size() != 2 {
			return false
		}
	}
	return true
}

// defaultOptions returns the paper's recommended PrivBayes configuration
// for a dataset: Binary-F on all-binary data, Hierarchical-R otherwise,
// with β = 0.3 and θ = 4 (Section 6.4).
func (c Config) defaultOptions(ds *dataset.Dataset, eps float64, rng *rand.Rand) core.Options {
	opt := core.Options{
		Epsilon: eps, Beta: 0.3, Theta: 4, K: -1, MaxK: c.MaxK,
		Parallelism: c.Parallelism, Rand: rng,
	}
	if isBinary(ds) {
		opt.Mode = core.ModeBinary
		opt.Score = score.F
	} else {
		opt.Mode = core.ModeGeneral
		opt.Score = score.R
		opt.UseHierarchy = true
	}
	return opt
}

// scorerCache shares score caches across repeats and ε values of one
// figure run; scores depend only on (dataset, function), not on the
// privacy budget.
type scorerCache struct {
	mu sync.Mutex
	m  map[string]*score.Scorer
}

func newScorerCache() *scorerCache { return &scorerCache{m: make(map[string]*score.Scorer)} }

func (s *scorerCache) get(fn score.Function, dsKey string, ds *dataset.Dataset) *score.Scorer {
	key := fmt.Sprintf("%v|%s", fn, dsKey)
	s.mu.Lock()
	defer s.mu.Unlock()
	if sc, ok := s.m[key]; ok {
		return sc
	}
	sc := score.NewScorer(fn, ds)
	s.m[key] = sc
	return sc
}

// Figures lists every runnable experiment id.
func Figures() []string {
	ids := []string{
		"4", "5", "6", "7", "8", "9", "10", "11",
		"12", "13", "14", "15", "16", "17", "18", "19",
		"table4", "table5",
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id ("4".."19", "table4", "table5").
func Run(id string, cfg Config) (*Result, error) {
	col := &collector{cfg: &cfg, figure: id}
	var err error
	switch id {
	case "4":
		err = runFigure4(cfg, col)
	case "5":
		err = runEncodingCounts(cfg, col, "Adult", []int{2, 3})
	case "6":
		err = runEncodingCounts(cfg, col, "BR2000", []int{2, 3})
	case "7":
		err = runEncodingSVM(cfg, col, "Adult")
	case "8":
		err = runEncodingSVM(cfg, col, "BR2000")
	case "9":
		err = runBetaSweep(cfg, col)
	case "10":
		err = runThetaSweep(cfg, col)
	case "11":
		err = runSourceOfError(cfg, col)
	case "12":
		err = runMarginalBaselines(cfg, col, "NLTCS", []int{3, 4})
	case "13":
		err = runMarginalBaselines(cfg, col, "ACS", []int{3, 4})
	case "14":
		err = runMarginalBaselines(cfg, col, "Adult", []int{2, 3})
	case "15":
		err = runMarginalBaselines(cfg, col, "BR2000", []int{2, 3})
	case "16":
		err = runSVMBaselines(cfg, col, "NLTCS")
	case "17":
		err = runSVMBaselines(cfg, col, "ACS")
	case "18":
		err = runSVMBaselines(cfg, col, "Adult")
	case "19":
		err = runSVMBaselines(cfg, col, "BR2000")
	case "table4":
		err = runTable4(cfg, col)
	case "table5":
		err = runTable5(cfg, col)
	default:
		return nil, fmt.Errorf("experiment: unknown figure %q (known: %v)", id, Figures())
	}
	if err != nil {
		return nil, err
	}
	return &Result{Figure: id, Points: col.points}, nil
}
