package experiment

import (
	"fmt"
	"sync"

	"privbayes/internal/baseline"
	"privbayes/internal/core"
	"privbayes/internal/workload"
)

// batteryPanel is one of the eight tasks used by Figures 9, 10 and 11:
// one counting and one classification task per dataset (Section 6.4).
type batteryPanel struct {
	label  string
	dsName string
	kind   string // "count" or "svm"
	alpha  int
	task   string
}

var battery = []batteryPanel{
	{"a-NLTCS-Q4", "NLTCS", "count", 4, ""},
	{"b-NLTCS-outside", "NLTCS", "svm", 0, "outside"},
	{"c-ACS-Q4", "ACS", "count", 4, ""},
	{"d-ACS-dwelling", "ACS", "svm", 0, "dwelling"},
	{"e-Adult-Q3", "Adult", "count", 3, ""},
	{"f-Adult-gender", "Adult", "svm", 0, "gender"},
	{"g-BR2000-Q3", "BR2000", "count", 3, ""},
	{"h-BR2000-religion", "BR2000", "svm", 0, "religion"},
}

var (
	evalMu    sync.Mutex
	evalCache = map[string]*workload.Evaluator{}
)

func (c Config) evaluator(dsName string, alpha int) (*workload.Evaluator, error) {
	ds, err := sourceData(dsName, c.N)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%d|%d|%d", dsName, alpha, c.MaxQuerySubsets, ds.N())
	evalMu.Lock()
	defer evalMu.Unlock()
	if e, ok := evalCache[key]; ok {
		return e, nil
	}
	e := workload.NewEvaluator(ds, alpha, c.MaxQuerySubsets, c.Parallelism, c.rng("eval", dsName, alpha))
	evalCache[key] = e
	return e, nil
}

// runPanelOnce executes one PrivBayes run for a battery panel and
// returns the panel's error metric. mutate adjusts the default options
// (β, θ, or the Figure 11 unlimited-budget switches) before fitting.
func runPanelOnce(cfg Config, scorers *scorerCache, p batteryPanel, eps float64, repeat int, tag string, mutate func(*core.Options)) (float64, error) {
	ds, err := sourceData(p.dsName, cfg.N)
	if err != nil {
		return 0, err
	}
	rng := cfg.rng(tag, p.label, eps, repeat)
	switch p.kind {
	case "count":
		opt := cfg.defaultOptions(ds, eps, rng)
		opt.Scorer = scorers.get(opt.Score, p.dsName, ds)
		mutate(&opt)
		m, err := core.Fit(ds, opt)
		if err != nil {
			return 0, err
		}
		syn := m.SampleP(ds.N(), rng, cfg.Parallelism)
		eval, err := cfg.evaluator(p.dsName, p.alpha)
		if err != nil {
			return 0, err
		}
		return eval.AVD(&baseline.Dataset{DS: syn}), nil
	case "svm":
		split := cfg.rng("split", p.dsName, repeat)
		train, test := ds.Split(0.8, split)
		task, err := workload.TaskByName(p.dsName, p.task)
		if err != nil {
			return 0, err
		}
		opt := cfg.defaultOptions(train, eps, rng)
		opt.Scorer = scorers.get(opt.Score, fmt.Sprintf("%s/train%d", p.dsName, repeat), train)
		mutate(&opt)
		m, err := core.Fit(train, opt)
		if err != nil {
			return 0, err
		}
		syn := m.SampleP(train.N(), rng, cfg.Parallelism)
		return TrainAndScore(syn, test, task, rng)
	default:
		return 0, fmt.Errorf("experiment: unknown panel kind %q", p.kind)
	}
}

// runBetaSweep reproduces Figure 9: error of the eight battery tasks as
// the budget split β varies, one series per ε.
func runBetaSweep(cfg Config, col *collector) error {
	return runParamSweep(cfg, col, "beta", BetaGrid, func(opt *core.Options, x float64) {
		opt.Beta = x
	})
}

// runThetaSweep reproduces Figure 10: the same battery as θ varies.
func runThetaSweep(cfg Config, col *collector) error {
	return runParamSweep(cfg, col, "theta", ThetaGrid, func(opt *core.Options, x float64) {
		opt.Theta = x
	})
}

func runParamSweep(cfg Config, col *collector, tag string, grid []float64, set func(*core.Options, float64)) error {
	scorers := newScorerCache()
	for _, p := range battery {
		for _, eps := range cfg.eps() {
			series := fmt.Sprintf("eps=%g", eps)
			for _, x := range grid {
				var sum float64
				for r := 0; r < cfg.Repeats; r++ {
					x := x
					v, err := runPanelOnce(cfg, scorers, p, eps, r, tag, func(opt *core.Options) { set(opt, x) })
					if err != nil {
						return err
					}
					sum += v
				}
				col.add(p.label, series, x, sum/float64(cfg.Repeats))
			}
		}
	}
	return nil
}

// runSourceOfError reproduces Figure 11: PrivBayes against BestNetwork
// (unlimited network-learning budget) and BestMarginal (noise-free
// marginals), isolating which phase dominates the error of each task.
func runSourceOfError(cfg Config, col *collector) error {
	scorers := newScorerCache()
	variants := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"PrivBayes", func(*core.Options) {}},
		{"BestNetwork", func(o *core.Options) { o.InfiniteNetworkBudget = true }},
		{"BestMarginal", func(o *core.Options) { o.InfiniteMarginalBudget = true }},
	}
	for _, p := range battery {
		for _, eps := range cfg.eps() {
			for _, v := range variants {
				var sum float64
				for r := 0; r < cfg.Repeats; r++ {
					val, err := runPanelOnce(cfg, scorers, p, eps, r, "fig11-"+v.name, v.mutate)
					if err != nil {
						return err
					}
					sum += val
				}
				col.add(p.label, v.name, eps, sum/float64(cfg.Repeats))
			}
		}
	}
	return nil
}
