package experiment

import (
	"fmt"
	"math/rand"

	"privbayes/internal/baseline"
	"privbayes/internal/core"
)

// runMarginalBaselines reproduces Figures 12-15: average variation
// distance over Qα for PrivBayes against the count-query baselines.
// Contingency and MWEM require materializing the full attribute domain,
// so — as in the paper — they run only on the binary datasets; MWEM on
// ACS (2^23 cells per improvement round) additionally hides behind
// Config.Heavy.
func runMarginalBaselines(cfg Config, col *collector, dsName string, alphas []int) error {
	ds, err := sourceData(dsName, cfg.N)
	if err != nil {
		return err
	}
	binary := isBinary(ds)
	scorers := newScorerCache()

	type series struct {
		name string
		run  func(alpha int, eps float64, rng *rand.Rand) (baseline.MarginalSource, error)
	}
	all := []series{
		{"PrivBayes", func(alpha int, eps float64, rng *rand.Rand) (baseline.MarginalSource, error) {
			opt := cfg.defaultOptions(ds, eps, rng)
			opt.Scorer = scorers.get(opt.Score, dsName, ds)
			m, err := core.Fit(ds, opt)
			if err != nil {
				return nil, err
			}
			return &baseline.Dataset{DS: m.SampleP(ds.N(), rng, cfg.Parallelism)}, nil
		}},
		{"Laplace", func(alpha int, eps float64, rng *rand.Rand) (baseline.MarginalSource, error) {
			return baseline.NewLaplace(ds, alpha, eps, rng), nil
		}},
		{"Fourier", func(alpha int, eps float64, rng *rand.Rand) (baseline.MarginalSource, error) {
			if binary {
				return baseline.NewFourier(ds, alpha, eps, rng), nil
			}
			return baseline.NewFourierEncoded(ds, alpha, eps, rng), nil
		}},
		{"Uniform", func(alpha int, eps float64, rng *rand.Rand) (baseline.MarginalSource, error) {
			return &baseline.Uniform{DS: ds}, nil
		}},
	}
	if binary {
		if dsName == "NLTCS" || cfg.Heavy {
			all = append(all, series{"Contingency", func(alpha int, eps float64, rng *rand.Rand) (baseline.MarginalSource, error) {
				return baseline.NewContingency(ds, eps, rng), nil
			}})
			all = append(all, series{"MWEM", func(alpha int, eps float64, rng *rand.Rand) (baseline.MarginalSource, error) {
				return baseline.NewMWEM(ds, alpha, eps, rng), nil
			}})
		}
	}

	for ai, alpha := range alphas {
		panel := fmt.Sprintf("%c-Q%d", 'a'+ai, alpha)
		eval, err := cfg.evaluator(dsName, alpha)
		if err != nil {
			return err
		}
		for _, eps := range cfg.eps() {
			for _, s := range all {
				var sum float64
				for r := 0; r < cfg.Repeats; r++ {
					rng := cfg.rng("marg", dsName, alpha, s.name, eps, r)
					src, err := s.run(alpha, eps, rng)
					if err != nil {
						return err
					}
					sum += eval.AVD(src)
				}
				col.add(panel, s.name, eps, sum/float64(cfg.Repeats))
			}
		}
	}
	return nil
}
