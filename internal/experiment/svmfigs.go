package experiment

import (
	"fmt"

	"privbayes/internal/core"
	"privbayes/internal/privsvm"
	"privbayes/internal/svm"
	"privbayes/internal/workload"
)

// runSVMBaselines reproduces Figures 16-19: misclassification rates of
// four simultaneously trained SVM classifiers per dataset. PrivBayes
// releases ONE synthetic dataset per run and trains all four classifiers
// from it; PrivateERM, PrivGene and Majority train each classifier with
// ε/4 of the budget; PrivateERM (Single) shows PrivateERM with the full
// ε per classifier; NoPrivacy is the non-private floor (Section 6.6).
func runSVMBaselines(cfg Config, col *collector, dsName string) error {
	ds, err := sourceData(dsName, cfg.N)
	if err != nil {
		return err
	}
	tasks, err := workload.Tasks(dsName)
	if err != nil {
		return err
	}
	scorers := newScorerCache()
	nt := len(tasks)

	for _, eps := range cfg.eps() {
		sums := map[string][]float64{}
		for _, name := range []string{"PrivBayes", "PrivateERM", "PrivateERM-Single", "PrivGene", "Majority", "NoPrivacy"} {
			sums[name] = make([]float64, nt)
		}
		for r := 0; r < cfg.Repeats; r++ {
			split := cfg.rng("split", dsName, r)
			train, test := ds.Split(0.8, split)

			// PrivBayes: one synthetic release for all four tasks.
			rng := cfg.rng("svmfig", dsName, "pb", eps, r)
			opt := cfg.defaultOptions(train, eps, rng)
			opt.Scorer = scorers.get(opt.Score, fmt.Sprintf("%s/train%d", dsName, r), train)
			m, err := core.Fit(train, opt)
			if err != nil {
				return err
			}
			syn := m.SampleP(train.N(), rng, cfg.Parallelism)

			for ti, task := range tasks {
				target, err := task.TargetIndex(train)
				if err != nil {
					return err
				}
				trainProb := svm.Featurize(train, target, task.Positive)
				testProb := svm.Featurize(test, target, task.Positive)
				taskRng := cfg.rng("svmfig", dsName, task.Name, eps, r)

				mcr, err := TrainAndScore(syn, test, task, taskRng)
				if err != nil {
					return err
				}
				sums["PrivBayes"][ti] += mcr

				erm := privsvm.PrivateERM(trainProb, eps/float64(nt), taskRng)
				sums["PrivateERM"][ti] += svm.MisclassificationRate(erm, testProb)

				ermSingle := privsvm.PrivateERM(trainProb, eps, taskRng)
				sums["PrivateERM-Single"][ti] += svm.MisclassificationRate(ermSingle, testProb)

				gene := privsvm.PrivGene(trainProb, eps/float64(nt), taskRng)
				sums["PrivGene"][ti] += svm.MisclassificationRate(gene, testProb)

				maj := privsvm.TrainMajority(trainProb, eps/float64(nt), taskRng)
				sums["Majority"][ti] += maj.MisclassificationRate(testProb)

				np := privsvm.NoPrivacy(trainProb, taskRng)
				sums["NoPrivacy"][ti] += svm.MisclassificationRate(np, testProb)
			}
		}
		for ti, task := range tasks {
			panel := fmt.Sprintf("%c-%s", 'a'+ti, task.Name)
			for name, vals := range sums {
				col.add(panel, name, eps, vals[ti]/float64(cfg.Repeats))
			}
		}
	}
	return nil
}
