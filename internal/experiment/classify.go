package experiment

import (
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/svm"
	"privbayes/internal/workload"
)

// svmEpochs is the Pegasos epoch count used throughout the harness.
const svmEpochs = 3

// TrainAndScore trains the paper's hinge-loss C-SVM (C = 1) for one
// classification task on trainData (real or synthetic — both share the
// schema, hence the feature layout) and returns its misclassification
// rate on the holdout. Exported so the statistical quality gate
// (internal/quality) scores SVM utility through the exact harness the
// figure reproductions use.
func TrainAndScore(trainData, test *dataset.Dataset, task workload.Task, rng *rand.Rand) (float64, error) {
	target, err := task.TargetIndex(trainData)
	if err != nil {
		return 0, err
	}
	trainProb := svm.Featurize(trainData, target, task.Positive)
	model := svm.TrainHinge(trainProb, 1, svmEpochs, rng)
	testProb := svm.Featurize(test, target, task.Positive)
	return svm.MisclassificationRate(model, testProb), nil
}
