package experiment

import (
	"privbayes/internal/core"
	"privbayes/internal/score"
)

// runFigure4 reproduces Figure 4: the quality (sum of mutual
// information) of the Bayesian network learned with score functions I,
// F (binary datasets only) and R, against the non-private greedy
// network ("NoPrivacy"), as ε varies. Binary datasets use the
// SIGMOD'14 binary pipeline; Adult and BR2000 use vanilla encoding
// (Section 6.2), so F is omitted there exactly as in the paper.
func runFigure4(cfg Config, col *collector) error {
	panels := []struct {
		panel, ds string
	}{
		{"a-NLTCS", "NLTCS"},
		{"b-ACS", "ACS"},
		{"c-Adult", "Adult"},
		{"d-BR2000", "BR2000"},
	}
	scorers := newScorerCache()
	for _, p := range panels {
		ds, err := sourceData(p.ds, cfg.N)
		if err != nil {
			return err
		}
		binary := isBinary(ds)
		fns := []score.Function{score.MI, score.R}
		if binary {
			fns = append(fns, score.F)
		}
		for _, eps := range cfg.eps() {
			// Private score-function series.
			for _, fn := range fns {
				var sum float64
				for r := 0; r < cfg.Repeats; r++ {
					rng := cfg.rng("fig4", p.ds, fn, eps, r)
					opt := core.Options{
						Epsilon: eps, Beta: 0.3, Theta: 4, K: -1, MaxK: cfg.MaxK,
						Score: fn, Parallelism: cfg.Parallelism, Rand: rng,
						Scorer: scorers.get(fn, p.ds, ds),
					}
					if binary {
						opt.Mode = core.ModeBinary
					} else {
						opt.Mode = core.ModeGeneral // vanilla: no hierarchy
					}
					m, err := core.Fit(ds, opt)
					if err != nil {
						return err
					}
					sum += m.Network.SumMI(ds)
				}
				col.add(p.panel, fn.String(), eps, sum/float64(cfg.Repeats))
			}
			// NoPrivacy: the optimal greedy network under the same
			// θ-derived capacity, found by maximizing I without noise.
			var sum float64
			for r := 0; r < cfg.Repeats; r++ {
				rng := cfg.rng("fig4", p.ds, "np", eps, r)
				opt := core.Options{
					Epsilon: eps, Beta: 0.3, Theta: 4, K: -1, MaxK: cfg.MaxK,
					Score: score.MI, Parallelism: cfg.Parallelism, Rand: rng,
					Scorer:                scorers.get(score.MI, p.ds, ds),
					InfiniteNetworkBudget: true,
				}
				if binary {
					opt.Mode = core.ModeBinary
				} else {
					opt.Mode = core.ModeGeneral
				}
				m, err := core.Fit(ds, opt)
				if err != nil {
					return err
				}
				sum += m.Network.SumMI(ds)
			}
			col.add(p.panel, "NoPrivacy", eps, sum/float64(cfg.Repeats))
		}
	}
	return nil
}
