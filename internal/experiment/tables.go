package experiment

import (
	"math"

	"privbayes/internal/score"
)

// runTable4 reproduces Table 4, the score-function property summary:
// range, sensitivity and (measured analytically) the sensitivity-to-
// range ratio, at the cardinality of each dataset. The paper's
// qualitative claims — S(F) < S(R) ≪ S(I), all ranges Θ(1) — are
// asserted by unit tests; here the concrete numbers are emitted so
// EXPERIMENTS.md can quote them.
func runTable4(cfg Config, col *collector) error {
	for _, dsName := range []string{"NLTCS", "ACS", "Adult", "BR2000"} {
		ds, err := sourceData(dsName, cfg.N)
		if err != nil {
			return err
		}
		n := ds.N()
		binary := isBinary(ds)
		col.add(dsName, "S(I)", float64(n), score.SensitivityI(n, binary))
		col.add(dsName, "S(F)", float64(n), score.SensitivityF(n))
		col.add(dsName, "S(R)", float64(n), score.SensitivityR(n))
		// Range of I for the dataset's widest attribute pairing.
		maxDom := 2
		for i := 0; i < ds.D(); i++ {
			if s := ds.Attr(i).Size(); s > maxDom {
				maxDom = s
			}
		}
		col.add(dsName, "range(I)", float64(n), math.Log2(float64(maxDom)))
		col.add(dsName, "range(F)", float64(n), 0.5)
		col.add(dsName, "range(R)", float64(n), 0.5)
	}
	return nil
}

// runTable5 reproduces Table 5, the dataset characteristics: cardinality,
// dimensionality and log2 of the total domain size.
func runTable5(cfg Config, col *collector) error {
	for _, dsName := range []string{"NLTCS", "ACS", "Adult", "BR2000"} {
		ds, err := sourceData(dsName, cfg.N)
		if err != nil {
			return err
		}
		col.add(dsName, "cardinality", 0, float64(ds.N()))
		col.add(dsName, "dimensionality", 0, float64(ds.D()))
		col.add(dsName, "log2-domain", 0, ds.TotalDomainLog2())
	}
	return nil
}
