package experiment

import (
	"strings"
	"testing"
)

// tinyConfig keeps the integration runs to a couple of seconds each.
func tinyConfig() Config {
	return Config{
		Repeats:         1,
		N:               600,
		Eps:             []float64{0.2},
		MaxQuerySubsets: 40,
		MaxK:            3,
		Seed:            7,
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestFiguresListStable(t *testing.T) {
	ids := Figures()
	if len(ids) != 18 {
		t.Fatalf("expected 18 experiment ids, got %d: %v", len(ids), ids)
	}
}

// Every figure must run end to end at tiny scale and produce points for
// the expected series.
func TestAllFiguresSmoke(t *testing.T) {
	wantSeries := map[string][]string{
		"4":      {"I", "R", "NoPrivacy"},
		"5":      {"Binary-F", "Gray-F", "Vanilla-R", "Hierarchical-R"},
		"6":      {"Binary-F", "Hierarchical-R"},
		"7":      {"Binary-F", "Hierarchical-R"},
		"8":      {"Vanilla-R"},
		"9":      {"eps=0.2"},
		"10":     {"eps=0.2"},
		"11":     {"PrivBayes", "BestNetwork", "BestMarginal"},
		"12":     {"PrivBayes", "Laplace", "Fourier", "Uniform", "Contingency", "MWEM"},
		"13":     {"PrivBayes", "Laplace", "Fourier", "Uniform"},
		"14":     {"PrivBayes", "Laplace", "Fourier", "Uniform"},
		"15":     {"PrivBayes", "Laplace", "Uniform"},
		"16":     {"PrivBayes", "PrivateERM", "PrivateERM-Single", "PrivGene", "Majority", "NoPrivacy"},
		"17":     {"PrivBayes", "NoPrivacy"},
		"18":     {"PrivBayes", "Majority"},
		"19":     {"PrivBayes", "PrivGene"},
		"table4": {"S(I)", "S(F)", "S(R)"},
		"table5": {"cardinality", "dimensionality", "log2-domain"},
	}
	for _, id := range Figures() {
		id := id
		t.Run("figure"+id, func(t *testing.T) {
			res, err := Run(id, tinyConfig())
			if err != nil {
				t.Fatalf("figure %s: %v", id, err)
			}
			if len(res.Points) == 0 {
				t.Fatalf("figure %s produced no points", id)
			}
			seen := map[string]bool{}
			for _, p := range res.Points {
				seen[p.Series] = true
				if p.Value != p.Value {
					t.Fatalf("figure %s: NaN value in %s/%s", id, p.Panel, p.Series)
				}
				if p.Value < 0 {
					t.Fatalf("figure %s: negative metric %v in %s/%s", id, p.Value, p.Panel, p.Series)
				}
			}
			for _, s := range wantSeries[id] {
				if !seen[s] {
					t.Errorf("figure %s: missing series %q (have %v)", id, s, keysOf(seen))
				}
			}
		})
	}
}

func keysOf(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestResultWriteCSV(t *testing.T) {
	res, err := Run("table5", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "figure,panel,series,x,value\n") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(out, "table5,NLTCS,dimensionality,0,16") {
		t.Errorf("missing expected row:\n%s", out)
	}
}

// Determinism: the same config must reproduce identical points.
func TestRunDeterministic(t *testing.T) {
	a, err := Run("4", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("4", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatal("point counts differ")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

// The headline result in miniature: at a moderate ε on NLTCS, PrivBayes
// must beat the Laplace and Uniform baselines on Q3 marginals.
func TestPrivBayesBeatsBaselinesSmallScale(t *testing.T) {
	cfg := tinyConfig()
	cfg.N = 4000
	cfg.Eps = []float64{0.4}
	cfg.Repeats = 2
	cfg.MaxQuerySubsets = 120
	res, err := Run("12", cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, p := range res.Points {
		if p.Panel == "a-Q3" {
			vals[p.Series] = p.Value
		}
	}
	if !(vals["PrivBayes"] < vals["Laplace"]) {
		t.Errorf("PrivBayes %v should beat Laplace %v", vals["PrivBayes"], vals["Laplace"])
	}
	if !(vals["PrivBayes"] < vals["Uniform"]) {
		t.Errorf("PrivBayes %v should beat Uniform %v", vals["PrivBayes"], vals["Uniform"])
	}
}
