package experiment

import (
	"fmt"

	"privbayes/internal/baseline"
	"privbayes/internal/workload"
)

// runEncodingCounts reproduces Figures 5 and 6: average variation
// distance over Qα for the four encodings on a non-binary dataset.
func runEncodingCounts(cfg Config, col *collector, dsName string, alphas []int) error {
	ds, err := sourceData(dsName, cfg.N)
	if err != nil {
		return err
	}
	scorers := newScorerCache()
	for _, alpha := range alphas {
		panel := fmt.Sprintf("%c-Q%d", 'a'+alpha-alphas[0], alpha)
		eval := workload.NewEvaluator(ds, alpha, cfg.MaxQuerySubsets, cfg.Parallelism, cfg.rng("eval", dsName, alpha))
		for _, eps := range cfg.eps() {
			for _, s := range encodingSeries {
				var sum float64
				for r := 0; r < cfg.Repeats; r++ {
					rng := cfg.rng("enc-count", dsName, alpha, s.name, eps, r)
					syn, err := synthesizeEncoded(s.kind, dsName, ds, eps, cfg, scorers, rng)
					if err != nil {
						return err
					}
					sum += eval.AVD(&baseline.Dataset{DS: syn})
				}
				col.add(panel, s.name, eps, sum/float64(cfg.Repeats))
			}
		}
	}
	return nil
}

// runEncodingSVM reproduces Figures 7 and 8: misclassification rates of
// SVM classifiers trained on synthetic data produced under each
// encoding. As in the paper, one synthetic dataset per run feeds all
// four classification tasks.
func runEncodingSVM(cfg Config, col *collector, dsName string) error {
	ds, err := sourceData(dsName, cfg.N)
	if err != nil {
		return err
	}
	tasks, err := workload.Tasks(dsName)
	if err != nil {
		return err
	}
	scorers := newScorerCache()
	for _, eps := range cfg.eps() {
		for _, s := range encodingSeries {
			sums := make([]float64, len(tasks))
			for r := 0; r < cfg.Repeats; r++ {
				split := cfg.rng("split", dsName, r)
				train, test := ds.Split(0.8, split)
				trainKey := fmt.Sprintf("%s/train%d", dsName, r)
				rng := cfg.rng("enc-svm", dsName, s.name, eps, r)
				syn, err := synthesizeEncoded(s.kind, trainKey, train, eps, cfg, scorers, rng)
				if err != nil {
					return err
				}
				for ti, task := range tasks {
					mcr, err := TrainAndScore(syn, test, task, rng)
					if err != nil {
						return err
					}
					sums[ti] += mcr
				}
			}
			for ti, task := range tasks {
				panel := fmt.Sprintf("%c-%s", 'a'+ti, task.Name)
				col.add(panel, s.name, eps, sums[ti]/float64(cfg.Repeats))
			}
		}
	}
	return nil
}
