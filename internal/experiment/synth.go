package experiment

import (
	"fmt"
	"math/rand"
	"sync"

	"privbayes/internal/core"
	"privbayes/internal/dataset"
	"privbayes/internal/encoding"
	"privbayes/internal/score"
)

// codecCache reuses the binarized view of a dataset across runs: the
// encoding is deterministic, and re-encoding 45k rows for every
// (ε, repeat) pair would dominate the harness.
var (
	encMu    sync.Mutex
	encCache = map[string]encodedView{}
)

type encodedView struct {
	codec *encoding.Codec
	ds    *dataset.Dataset
}

func encodedData(kind encoding.Kind, dsKey string, ds *dataset.Dataset) encodedView {
	key := fmt.Sprintf("%v|%s", kind, dsKey)
	encMu.Lock()
	defer encMu.Unlock()
	if v, ok := encCache[key]; ok {
		return v
	}
	codec := encoding.NewCodec(kind, ds.Attrs())
	v := encodedView{codec: codec, ds: codec.Encode(ds)}
	encCache[key] = v
	return v
}

// synthesizeEncoded runs the full PrivBayes pipeline under the given
// encoding (Section 5.1) and returns a synthetic dataset over the
// ORIGINAL schema: Binary and Gray model the bit-decomposed data with
// score F and decode the output; Vanilla and Hierarchical model the raw
// domains with score R, the latter exposing taxonomy-tree levels to
// parent-set selection.
func synthesizeEncoded(kind encoding.Kind, dsKey string, ds *dataset.Dataset, eps float64, cfg Config, scorers *scorerCache, rng *rand.Rand) (*dataset.Dataset, error) {
	switch kind {
	case encoding.Binary, encoding.Gray:
		view := encodedData(kind, dsKey, ds)
		encKey := fmt.Sprintf("%v|%s", kind, dsKey)
		opt := core.Options{
			Epsilon: eps, Beta: 0.3, Theta: 4, K: -1, MaxK: cfg.MaxK,
			Mode: core.ModeBinary, Score: score.F,
			Parallelism: cfg.Parallelism, Rand: rng,
			Scorer: scorers.get(score.F, encKey, view.ds),
		}
		m, err := core.Fit(view.ds, opt)
		if err != nil {
			return nil, err
		}
		return view.codec.Decode(m.SampleP(ds.N(), rng, cfg.Parallelism)), nil
	case encoding.Vanilla, encoding.Hierarchical:
		opt := core.Options{
			Epsilon: eps, Beta: 0.3, Theta: 4, MaxK: cfg.MaxK,
			Mode: core.ModeGeneral, Score: score.R,
			Parallelism: cfg.Parallelism, Rand: rng,
			UseHierarchy: kind == encoding.Hierarchical,
			Scorer:       scorers.get(score.R, dsKey, ds),
		}
		m, err := core.Fit(ds, opt)
		if err != nil {
			return nil, err
		}
		return m.SampleP(ds.N(), rng, cfg.Parallelism), nil
	default:
		return nil, fmt.Errorf("experiment: unknown encoding %v", kind)
	}
}

// encodingSeries pairs the paper's series names with encodings: the
// score function is determined by the encoding (F needs binary domains,
// R handles general ones).
var encodingSeries = []struct {
	name string
	kind encoding.Kind
}{
	{"Binary-F", encoding.Binary},
	{"Gray-F", encoding.Gray},
	{"Vanilla-R", encoding.Vanilla},
	{"Hierarchical-R", encoding.Hierarchical},
}
