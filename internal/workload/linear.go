package workload

import (
	"math"
	"math/rand"

	"privbayes/internal/dataset"
)

// LinearQuery is a random linear counting query over a few attributes:
// it assigns each tuple a weight — the product of per-attribute
// coefficients attached to the tuple's codes — and asks for the average
// weight. Subset-sum (count) queries are the special case of 0/1
// coefficients; general coefficients exercise the "almost any type of
// linear query" claim of Section 1.2.
type LinearQuery struct {
	Attrs  []int
	Coeffs [][]float64 // Coeffs[i][code] for attribute Attrs[i]
}

// NewLinearQueries draws m random linear queries, each over `width`
// distinct attributes with coefficients uniform in [0, 1].
func NewLinearQueries(ds *dataset.Dataset, m, width int, rng *rand.Rand) []LinearQuery {
	if width > ds.D() {
		width = ds.D()
	}
	out := make([]LinearQuery, m)
	for q := range out {
		attrs := rng.Perm(ds.D())[:width]
		coeffs := make([][]float64, width)
		for i, a := range attrs {
			c := make([]float64, ds.Attr(a).Size())
			for j := range c {
				c[j] = rng.Float64()
			}
			coeffs[i] = c
		}
		out[q] = LinearQuery{Attrs: attrs, Coeffs: coeffs}
	}
	return out
}

// Evaluate answers the query on a dataset: (1/n) Σ_tuples Π_i
// coeff_i[tuple[attr_i]]. An empty dataset answers 0.
func (q LinearQuery) Evaluate(ds *dataset.Dataset) float64 {
	n := ds.N()
	if n == 0 {
		return 0
	}
	cols := make([][]uint16, len(q.Attrs))
	for i, a := range q.Attrs {
		cols[i] = ds.ColumnCodes(a)
	}
	var sum float64
	for r := 0; r < n; r++ {
		w := 1.0
		for i := range cols {
			w *= q.Coeffs[i][cols[i][r]]
		}
		sum += w
	}
	return sum / float64(n)
}

// AvgLinearQueryError is the mean absolute error of the synthetic
// dataset's answers over a query set.
func AvgLinearQueryError(real, syn *dataset.Dataset, queries []LinearQuery) float64 {
	if len(queries) == 0 {
		return 0
	}
	var sum float64
	for _, q := range queries {
		sum += math.Abs(q.Evaluate(real) - q.Evaluate(syn))
	}
	return sum / float64(len(queries))
}
