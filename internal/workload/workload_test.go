package workload

import (
	"math/rand"
	"testing"

	"privbayes/internal/baseline"
	"privbayes/internal/data"
	"privbayes/internal/dataset"
)

func TestTasksDefinedForAllDatasets(t *testing.T) {
	for _, name := range []string{"NLTCS", "ACS", "Adult", "BR2000"} {
		tasks, err := Tasks(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tasks) != 4 {
			t.Errorf("%s: %d tasks, want 4 (Section 6.1)", name, len(tasks))
		}
		spec, _ := data.ByName(name)
		ds := spec.GenerateN(10)
		for _, task := range tasks {
			idx, err := task.TargetIndex(ds)
			if err != nil {
				t.Errorf("%s/%s: %v", name, task.Name, err)
				continue
			}
			// Positive must be callable over the whole domain and split
			// it non-trivially.
			pos := 0
			size := ds.Attr(idx).Size()
			for c := 0; c < size; c++ {
				if task.Positive(c) {
					pos++
				}
			}
			if pos == 0 || pos == size {
				t.Errorf("%s/%s: positive class covers %d/%d codes", name, task.Name, pos, size)
			}
		}
	}
}

func TestTasksUnknownDataset(t *testing.T) {
	if _, err := Tasks("nope"); err == nil {
		t.Error("unknown dataset should error")
	}
	if _, err := TaskByName("NLTCS", "nope"); err == nil {
		t.Error("unknown task should error")
	}
}

func TestTaskByName(t *testing.T) {
	task, err := TaskByName("Adult", "salary")
	if err != nil {
		t.Fatal(err)
	}
	if task.Attr != "salary" || !task.Positive(1) || task.Positive(0) {
		t.Error("salary task misconfigured")
	}
}

func TestAvgVariationDistanceZeroForSelf(t *testing.T) {
	spec, _ := data.ByName("NLTCS")
	ds := spec.GenerateN(500)
	if got := AvgVariationDistance(ds, &baseline.Dataset{DS: ds}, 2); got > 1e-12 {
		t.Errorf("self AVD = %v", got)
	}
}

func TestEvaluatorMatchesDirectComputation(t *testing.T) {
	spec, _ := data.ByName("NLTCS")
	ds := spec.GenerateN(800)
	other := spec.GenerateN(400) // different distribution sample
	e := NewEvaluator(ds, 2, 0, 1, nil)
	direct := AvgVariationDistance(ds, &baseline.Dataset{DS: other}, 2)
	if got := e.AVD(&baseline.Dataset{DS: other}); got != direct {
		t.Errorf("evaluator AVD %v != direct %v", got, direct)
	}
}

func TestEvaluatorSampling(t *testing.T) {
	spec, _ := data.ByName("NLTCS")
	ds := spec.GenerateN(300)
	e := NewEvaluator(ds, 3, 25, 4, rand.New(rand.NewSource(1)))
	if len(e.Subsets) != 25 {
		t.Fatalf("sampled %d subsets, want 25", len(e.Subsets))
	}
	// Sampled estimate should be in the ballpark of the full mean.
	full := NewEvaluator(ds, 3, 0, 1, nil)
	uni := &baseline.Uniform{DS: ds}
	a, b := e.AVD(uni), full.AVD(uni)
	if diff := a - b; diff > 0.1 || diff < -0.1 {
		t.Errorf("sampled AVD %v far from full AVD %v", a, b)
	}
}

func TestTargetIndexMissingAttr(t *testing.T) {
	task := Task{Name: "x", Attr: "missing"}
	ds := dataset.New([]dataset.Attribute{dataset.NewCategorical("a", []string{"0", "1"})})
	if _, err := task.TargetIndex(ds); err == nil {
		t.Error("missing attribute should error")
	}
}
