// Package workload defines the paper's two evaluation tasks
// (Section 6.1): answering all α-way marginal queries Qα, scored by the
// average total-variation distance against the sensitive data, and
// training multiple SVM classifiers on released data, scored by
// misclassification rate on a holdout.
package workload

import (
	"fmt"

	"privbayes/internal/baseline"
	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// AvgVariationDistance evaluates a marginal source against the real
// dataset over the full query set Qα, returning the mean total-variation
// distance (the paper's "average variation distance").
func AvgVariationDistance(real *dataset.Dataset, src baseline.MarginalSource, alpha int) float64 {
	subsets := baseline.Subsets(real.D(), alpha)
	if len(subsets) == 0 {
		return 0
	}
	var sum float64
	for _, attrs := range subsets {
		vars := make([]marginal.Var, len(attrs))
		for i, a := range attrs {
			vars[i] = marginal.Var{Attr: a}
		}
		truth := marginal.Materialize(real, vars)
		est := src.Marginal(attrs)
		sum += marginal.TVD(truth, est)
	}
	return sum / float64(len(subsets))
}

// Task is one binary classification task of Section 6.1: predict
// whether the target attribute's code is in the positive class, from all
// other attributes.
type Task struct {
	Dataset  string
	Name     string // the paper's Y label, e.g. "outside"
	Attr     string // target attribute name
	Positive func(code int) bool
}

// Tasks returns the paper's four classification tasks for a dataset.
func Tasks(dsName string) ([]Task, error) {
	switch dsName {
	case "NLTCS":
		// Predict inability (code 1 = "unable") for four activities.
		mk := func(name string) Task {
			return Task{Dataset: dsName, Name: name, Attr: name, Positive: func(c int) bool { return c == 1 }}
		}
		return []Task{mk("outside"), mk("traveling"), mk("bathing"), mk("money")}, nil
	case "ACS":
		mk := func(name string) Task {
			return Task{Dataset: dsName, Name: name, Attr: name, Positive: func(c int) bool { return c == 1 }}
		}
		return []Task{mk("dwelling"), mk("mortgage"), mk("multigen"), mk("school")}, nil
	case "Adult":
		return []Task{
			{Dataset: dsName, Name: "gender", Attr: "sex", Positive: func(c int) bool { return c == 0 }},    // Female
			{Dataset: dsName, Name: "salary", Attr: "salary", Positive: func(c int) bool { return c == 1 }}, // >50K
			// Post-secondary degree: Bachelors(12)..Doctorate(15).
			{Dataset: dsName, Name: "education", Attr: "education", Positive: func(c int) bool { return c >= 12 }},
			{Dataset: dsName, Name: "marital", Attr: "marital", Positive: func(c int) bool { return c == 0 }}, // Never-married
		}, nil
	case "BR2000":
		return []Task{
			{Dataset: dsName, Name: "religion", Attr: "religion", Positive: func(c int) bool { return c == 0 }}, // Catholic
			{Dataset: dsName, Name: "car", Attr: "car", Positive: func(c int) bool { return c == 1 }},
			// At least one child: bins above the zero bin (domain 0..8 in 8 bins).
			{Dataset: dsName, Name: "child", Attr: "children", Positive: func(c int) bool { return c >= 1 }},
			// Older than 20: age bins are 6 years wide over [0, 96].
			{Dataset: dsName, Name: "age", Attr: "age", Positive: func(c int) bool { return c >= 4 }},
		}, nil
	default:
		return nil, fmt.Errorf("workload: no tasks defined for dataset %q", dsName)
	}
}

// TaskByName finds one task of a dataset.
func TaskByName(dsName, name string) (Task, error) {
	tasks, err := Tasks(dsName)
	if err != nil {
		return Task{}, err
	}
	for _, t := range tasks {
		if t.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("workload: dataset %s has no task %q", dsName, name)
}

// TargetIndex resolves the task's target attribute in a dataset.
func (t Task) TargetIndex(ds *dataset.Dataset) (int, error) {
	idx := ds.AttrIndex(t.Attr)
	if idx < 0 {
		return 0, fmt.Errorf("workload: dataset has no attribute %q for task %s", t.Attr, t.Name)
	}
	return idx, nil
}
