package workload

import (
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/data"
	"privbayes/internal/dataset"
)

func TestLinearQueryEvaluate(t *testing.T) {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1"}),
		dataset.NewCategorical("b", []string{"0", "1", "2"}),
	}
	ds := dataset.New(attrs)
	ds.Append([]uint16{0, 2})
	ds.Append([]uint16{1, 0})
	q := LinearQuery{
		Attrs:  []int{0, 1},
		Coeffs: [][]float64{{0.5, 1.0}, {0.1, 0.2, 0.3}},
	}
	// Row 1: 0.5*0.3 = 0.15; row 2: 1.0*0.1 = 0.1; mean = 0.125.
	if got := q.Evaluate(ds); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("Evaluate = %v, want 0.125", got)
	}
}

func TestLinearQueryEmptyDataset(t *testing.T) {
	ds := dataset.New([]dataset.Attribute{dataset.NewCategorical("a", []string{"0", "1"})})
	q := LinearQuery{Attrs: []int{0}, Coeffs: [][]float64{{1, 1}}}
	if q.Evaluate(ds) != 0 {
		t.Error("empty dataset should answer 0")
	}
}

func TestNewLinearQueriesShape(t *testing.T) {
	spec, _ := data.ByName("NLTCS")
	ds := spec.GenerateN(100)
	qs := NewLinearQueries(ds, 25, 3, rand.New(rand.NewSource(1)))
	if len(qs) != 25 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if len(q.Attrs) != 3 || len(q.Coeffs) != 3 {
			t.Fatal("query width wrong")
		}
		seen := map[int]bool{}
		for i, a := range q.Attrs {
			if seen[a] {
				t.Fatal("duplicate attribute in query")
			}
			seen[a] = true
			if len(q.Coeffs[i]) != ds.Attr(a).Size() {
				t.Fatal("coefficient vector size mismatch")
			}
		}
	}
}

func TestAvgLinearQueryErrorProperties(t *testing.T) {
	spec, _ := data.ByName("NLTCS")
	ds := spec.GenerateN(2000)
	qs := NewLinearQueries(ds, 40, 3, rand.New(rand.NewSource(2)))
	if got := AvgLinearQueryError(ds, ds, qs); got != 0 {
		t.Errorf("self error = %v", got)
	}
	// A fresh sample from the same distribution should answer closely;
	// a shuffled-column (independence-breaking) copy should not.
	same := spec.GenerateN(2000)
	near := AvgLinearQueryError(ds, same, qs)
	if near > 0.02 {
		t.Errorf("same-distribution error = %v, want small", near)
	}
	perm := ds.Clone()
	// Destroy correlations by shuffling one column independently.
	rng := rand.New(rand.NewSource(3))
	col := append([]uint16(nil), perm.ColumnCodes(0)...)
	rng.Shuffle(len(col), func(i, j int) { col[i], col[j] = col[j], col[i] })
	broken := dataset.New(ds.Attrs())
	rec := make([]uint16, ds.D())
	for r := 0; r < ds.N(); r++ {
		rec = ds.Record(r, rec)
		rec[0] = col[r]
		broken.Append(rec)
	}
	far := AvgLinearQueryError(ds, broken, qs)
	if far <= near {
		t.Errorf("correlation-breaking copy (%v) should answer worse than resample (%v)", far, near)
	}
}
