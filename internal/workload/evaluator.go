package workload

import (
	"math/rand"

	"privbayes/internal/baseline"
	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/parallel"
)

// Evaluator scores marginal sources against a fixed real dataset for one
// query set Qα. It caches the ground-truth marginals, and can evaluate a
// uniform random sample of the query set when the full set is too large
// to re-materialize per method per run (the paper averages over all
// queries; sampling estimates the same mean).
type Evaluator struct {
	real    *dataset.Dataset
	Alpha   int
	Subsets [][]int
	truth   []*marginal.Table
}

// NewEvaluator prepares an evaluator. maxSubsets > 0 samples that many
// subsets of Qα without replacement (using rng); 0 keeps the full set.
// parallelism bounds the worker pool for ground-truth materialization
// (<= 0 uses all cores, 1 is serial; see parallel.Workers).
func NewEvaluator(real *dataset.Dataset, alpha, maxSubsets, parallelism int, rng *rand.Rand) *Evaluator {
	subsets := baseline.Subsets(real.D(), alpha)
	if maxSubsets > 0 && maxSubsets < len(subsets) {
		perm := rng.Perm(len(subsets))[:maxSubsets]
		picked := make([][]int, maxSubsets)
		for i, j := range perm {
			picked[i] = subsets[j]
		}
		subsets = picked
	}
	e := &Evaluator{real: real, Alpha: alpha, Subsets: subsets}
	// Ground-truth marginals are independent full passes over the real
	// data; fan them out, one serial materialization per subset, with
	// ordered reduction — bit-identical to the serial loop. Low-arity
	// subsets over bit-packed columns take Materialize's popcount fast
	// path (itself bit-identical to the serial row walk).
	e.truth = parallel.Map(parallel.Workers(parallelism), len(subsets), func(i int) *marginal.Table {
		attrs := subsets[i]
		vars := make([]marginal.Var, len(attrs))
		for j, a := range attrs {
			vars[j] = marginal.Var{Attr: a}
		}
		return marginal.Materialize(real, vars)
	})
	return e
}

// AVDDataset evaluates a synthetic dataset directly: the dataset's
// empirical marginals answer the query set. This is the paper's
// synthetic-data evaluation path (and the quality gate's TVD metric) —
// equivalent to AVD over a baseline.Dataset source.
func (e *Evaluator) AVDDataset(ds *dataset.Dataset) float64 {
	return e.AVD(&baseline.Dataset{DS: ds})
}

// AVDExact evaluates an exact answerer — typically a fitted model's
// query engine — over the evaluator's query subsets: answer receives
// each subset's attribute indices and returns the model's marginal for
// it. Unlike AVDDataset, the answers carry no sampling error, so the
// returned distance measures model fidelity alone.
func (e *Evaluator) AVDExact(answer func(attrs []int) (*marginal.Table, error)) (float64, error) {
	if len(e.Subsets) == 0 {
		return 0, nil
	}
	var sum float64
	for i, attrs := range e.Subsets {
		t, err := answer(attrs)
		if err != nil {
			return 0, err
		}
		sum += marginal.TVD(e.truth[i], t)
	}
	return sum / float64(len(e.Subsets)), nil
}

// AVD returns the average total-variation distance of the source's
// answers over the evaluator's query subsets.
func (e *Evaluator) AVD(src baseline.MarginalSource) float64 {
	if len(e.Subsets) == 0 {
		return 0
	}
	var sum float64
	for i, attrs := range e.Subsets {
		sum += marginal.TVD(e.truth[i], src.Marginal(attrs))
	}
	return sum / float64(len(e.Subsets))
}
