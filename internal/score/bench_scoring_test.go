package score

// Shared-scan vs legacy scoring benchmarks over the (d, k) grid the
// acceptance criteria track. Each iteration scores one greedy-iteration
// shaped batch — every remaining child crossed with every size-k subset
// of a (k+1)-attribute V, the candidate shape of Algorithm 2's early
// iterations where scoring cost peaks — on a fresh scorer, so timings
// measure the engines cold, without cross-iteration memo or index hits.
// `make bench-json` captures the two series and their speedups in
// BENCH_scoring.json.

import (
	"fmt"
	"testing"
)

const benchRows = 5000

func benchGrid(b *testing.B, run func(b *testing.B, sc *Scorer, pairs []Pair)) {
	b.Helper()
	for _, d := range []int{8, 16, 32} {
		for _, k := range []int{2, 3} {
			ds := wideBinaryData(benchRows, d, int64(7*d+k))
			pairs := greedyShapedPairs(d, k+1, k)
			b.Run(fmt.Sprintf("d=%d/k=%d", d, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run(b, NewScorer(MI, ds), pairs)
				}
			})
		}
	}
}

// BenchmarkScoreBatchShared measures the shared-scan engine: one parent
// configuration scan per parent set plus one fused counting pass for all
// of its children.
func BenchmarkScoreBatchShared(b *testing.B) {
	benchGrid(b, func(b *testing.B, sc *Scorer, pairs []Pair) {
		sc.ScoreBatch(1, pairs)
	})
}

// BenchmarkScoreBatchLegacy measures the pre-shared-scan reference path:
// one full (k+1)-variable row scan per candidate.
func BenchmarkScoreBatchLegacy(b *testing.B) {
	benchGrid(b, func(b *testing.B, sc *Scorer, pairs []Pair) {
		sc.ScoreBatchLegacy(1, pairs)
	})
}

// BenchmarkScoreBatchSharedWarm measures the steady-state cost once the
// index cache holds the batch's parent sets — the cross-iteration case.
func BenchmarkScoreBatchSharedWarm(b *testing.B) {
	ds := wideBinaryData(benchRows, 16, 113)
	pairs := greedyShapedPairs(16, 4, 3)
	sc := NewScorerSized(MI, ds, 1) // memo never hits; indexes stay warm
	sc.ScoreBatch(1, pairs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.ScoreBatch(1, pairs)
	}
}
