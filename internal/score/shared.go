package score

// The shared-scan scoring engine. A greedy iteration of Algorithm 2
// scores C(|V|,k)·(d−|V|) candidates that share only C(|V|,k) distinct
// parent sets; the legacy path rescanned all n rows per candidate. Here
// ScoreBatch groups the uncached candidates by canonical parent set,
// pays one O(n·k) parent-configuration scan per group (reused across
// greedy iterations through the scorer's IndexCache), and materializes
// every child joint of the group in a single fused O(n) pass — cutting
// per-iteration scoring from O(#cand·n·k) to O(#Π·n·k + #cand·n).
//
// The engine's outputs are bit-identical to the legacy per-candidate
// path: joint counts merge exactly (integers), and marginal.Ladder
// converts counts into the very float values the serial Materialize
// accumulates, so MI, F and R see byte-equal inputs. That preserves both
// PR 1 contracts — identical learned networks at every Parallelism
// setting, including the Parallelism=1 legacy-serial contract — while
// making the serial path itself several times faster.

import (
	"context"
	"fmt"

	"privbayes/internal/infotheory"
	"privbayes/internal/marginal"
	"privbayes/internal/parallel"
)

// batchWork is one distinct uncached pair in a batch: the child, the
// canonical identity, and every output slot awaiting the value.
type batchWork struct {
	x       marginal.Var
	canon   []marginal.Var // [sorted parents..., x]
	key     uint64
	outIdxs []int
	val     float64
}

// batchGroup collects the works sharing one parent set. parents keeps
// the first-seen order, which is the order the legacy memo would have
// materialized with — part of the bit-identity contract.
type batchGroup struct {
	parents []marginal.Var
	key     uint64 // hash of the canonical (sorted) parent set
	canon   []marginal.Var
	works   []*batchWork
}

// ScoreBatch evaluates every candidate pair through the shared-scan
// engine and returns the results in input order. Values are bit-identical
// to sequential Score calls at any parallelism — see the package note
// above — and every result lands in the memo, so a batch also serves as
// a parallel precompute for a scorer shared across runs. Parallelism
// fans out over parent-set groups, and over row chunks within a group
// when there are fewer groups than workers (<= 0 selects GOMAXPROCS).
func (s *Scorer) ScoreBatch(parallelism int, pairs []Pair) []float64 {
	out, err := s.ScoreBatchContext(context.Background(), parallelism, pairs)
	if err != nil {
		// Unreachable: the background context never ends.
		panic(err)
	}
	return out
}

// ScoreBatchContext is ScoreBatch with cancellation: when ctx ends it
// stops dispatching parent-set groups, discards the partial batch
// (nothing is memoized) and returns ctx.Err(). A nil error guarantees
// the full, bit-identical result vector.
func (s *Scorer) ScoreBatchContext(ctx context.Context, parallelism int, pairs []Pair) ([]float64, error) {
	out := make([]float64, len(pairs))
	if len(pairs) == 0 {
		return out, nil
	}
	if s.ds.N() == 0 {
		// Degenerate dataset: the legacy path's uniform-table semantics.
		for i, p := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = s.Score(p.X, p.Parents)
		}
		return out, nil
	}

	groups, works := s.planBatch(pairs, out)
	if len(groups) > 0 {
		// A batchable count source satisfies the whole batch's missing
		// tables in one pass over the data before the groups fan out —
		// this is what bounds the out-of-core fit to one full scan per
		// greedy iteration.
		if bcs, ok := s.cs.(marginal.BatchCountSource); ok {
			reqs := make([]marginal.CountRequest, len(groups))
			for i, g := range groups {
				children := make([]marginal.Var, len(g.works))
				for j, w := range g.works {
					children[j] = w.x
				}
				reqs[i] = marginal.CountRequest{Parents: g.parents, Children: children}
			}
			if err := bcs.Prefetch(ctx, reqs); err != nil {
				return nil, err
			}
		}

		workers := parallel.Workers(parallelism)
		inner := workers / len(groups)
		if inner < 1 {
			inner = 1
		}
		groupErrs := make([]error, len(groups))
		if err := parallel.ForCtx(ctx, workers, len(groups), func(gi int) {
			groupErrs[gi] = s.scoreGroup(groups[gi], inner)
		}); err != nil {
			return nil, err
		}
		for _, err := range groupErrs {
			if err != nil {
				return nil, err
			}
		}

		s.mu.Lock()
		for _, w := range works {
			s.memo.PutIfAbsent(w.key, w.canon, w.val)
		}
		s.mu.Unlock()
		for _, w := range works {
			for _, i := range w.outIdxs {
				out[i] = w.val
			}
		}
	}
	return out, nil
}

// planBatch resolves memo hits into out and partitions the remaining
// distinct pairs into parent-set groups, preserving first-seen order for
// groups and works so the whole plan is independent of parallelism.
func (s *Scorer) planBatch(pairs []Pair, out []float64) ([]*batchGroup, []*batchWork) {
	var groups []*batchGroup
	var works []*batchWork
	workByKey := make(map[uint64][]*batchWork)
	groupByKey := make(map[uint64][]*batchGroup)

	s.mu.Lock()
	defer s.mu.Unlock()
	for i, p := range pairs {
		canon := canonPair(p.X, p.Parents)
		key := marginal.VarsKey(canon)
		if v, ok := s.memo.Get(key, canon); ok {
			out[i] = v
			continue
		}
		var w *batchWork
		for _, cand := range workByKey[key] {
			if varsEq(cand.canon, canon) {
				w = cand
				break
			}
		}
		if w != nil {
			w.outIdxs = append(w.outIdxs, i)
			continue
		}
		w = &batchWork{x: p.X, canon: canon, key: key, outIdxs: []int{i}}
		workByKey[key] = append(workByKey[key], w)
		works = append(works, w)

		pcanon := canon[:len(canon)-1]
		pkey := marginal.VarsKey(pcanon)
		var g *batchGroup
		for _, cand := range groupByKey[pkey] {
			if varsEq(cand.canon, pcanon) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &batchGroup{
				parents: append([]marginal.Var(nil), p.Parents...),
				key:     pkey,
				canon:   pcanon,
			}
			groupByKey[pkey] = append(groupByKey[pkey], g)
			groups = append(groups, g)
		}
		g.works = append(g.works, w)
	}
	return groups, works
}

// scoreGroup materializes every child joint of one parent-set group —
// with a single fused scan in row mode, or from the count source in
// counts mode — and evaluates the score function on each. The
// post-joint arithmetic is identical in both modes, and the joints are
// integer-equal, so so are the scores.
func (s *Scorer) scoreGroup(g *batchGroup, parallelism int) error {
	if _, ok := marginal.ParentConfigs(s.ds, g.parents); !ok {
		if s.cs != nil {
			// The row-mode fallback rescans rows per candidate; out of
			// core there are no rows. Unreachable under θ-usefulness
			// domain caps.
			return fmt.Errorf("score: parent set %v overflows the code domain; not scorable out of core", g.parents)
		}
		// Configuration space exceeds the uint32 code domain; fall back
		// to the per-candidate path for this (pathological) group.
		for _, w := range g.works {
			w.val = s.compute(w.x, g.parents)
		}
		return nil
	}
	if s.Fn == F {
		for _, v := range g.parents {
			if v.Size(s.ds) != 2 {
				panic("score: F requires binary parent attributes")
			}
		}
		for _, w := range g.works {
			if w.x.Size(s.ds) != 2 {
				panic("score: F requires a binary child attribute")
			}
		}
	}

	children := make([]marginal.Var, len(g.works))
	for j, w := range g.works {
		children[j] = w.x
	}
	var joints []*marginal.Table
	if s.cs != nil {
		var err error
		joints, err = s.cs.CountTables(g.parents, children)
		if err != nil {
			return err
		}
	} else {
		ix := s.idx.Get(s.ds, g.parents, parallelism)
		joints = ix.CountChildren(s.ds, children, parallelism)
	}

	n := s.ds.N()
	switch s.Fn {
	case F:
		for j, w := range g.works {
			w.val = FScoreFromCounts(joints[j].P, n)
		}
	case MI:
		lad := s.idx.Ladder(n)
		for j, w := range g.works {
			lad.Apply(joints[j])
			w.val = infotheory.MutualInformationSplit(joints[j])
		}
	case R:
		lad := s.idx.Ladder(n)
		for j, w := range g.works {
			lad.Apply(joints[j])
			w.val = RScore(joints[j])
		}
	default:
		panic("score: unknown function")
	}
	return nil
}

// Indexes exposes the scorer's parent-configuration index cache so later
// pipeline stages (the noisy-conditional materialization in
// internal/core) can reuse the indexes the final greedy iterations built.
func (s *Scorer) Indexes() *marginal.IndexCache { return s.idx }

// ParentEntropy returns H(Π) for a parent set, computed from the exact
// parent-configuration counts and cached per parent set across children
// and iterations (see marginal.ParentIndex.Entropy).
func (s *Scorer) ParentEntropy(parents []marginal.Var) float64 {
	if _, ok := marginal.ParentConfigs(s.ds, parents); !ok {
		panic("score: parent set too large for configuration indexing")
	}
	return s.idx.Get(s.ds, parents, 1).Entropy()
}
