package score

// Equivalence and stress tests for the shared-scan batch engine: the
// acceptance contract is that ScoreBatch returns values bit-identical to
// the legacy per-candidate path for every score function, at taxonomy
// levels above zero, and at every parallelism — including the
// Parallelism=1 legacy-serial contract, which holds because the serial
// outputs themselves are byte-equal.

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/infotheory"
	"privbayes/internal/marginal"
)

// greedyShapedPairs mimics one iteration of Algorithm 2: every remaining
// child crossed with every size-k subset of the chosen set V — the
// candidate shape whose parent-set sharing the engine exploits.
func greedyShapedPairs(d, vSize, k int) []Pair {
	var parentSets [][]marginal.Var
	set := make([]marginal.Var, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(set) == k {
			parentSets = append(parentSets, append([]marginal.Var(nil), set...))
			return
		}
		for i := start; i <= vSize-(k-len(set)); i++ {
			set = append(set, marginal.Var{Attr: i})
			rec(i + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	var pairs []Pair
	for x := vSize; x < d; x++ {
		for _, ps := range parentSets {
			pairs = append(pairs, Pair{X: marginal.Var{Attr: x}, Parents: ps})
		}
	}
	return pairs
}

// wideBinaryData builds an n-row all-binary dataset of width d with
// chained correlations.
func wideBinaryData(n, d int, seed int64) *dataset.Dataset {
	attrs := make([]dataset.Attribute, d)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(string(rune('a'+i%26))+string(rune('0'+i/26)), []string{"0", "1"})
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, d)
	for r := 0; r < n; r++ {
		rec[0] = uint16(rng.Intn(2))
		for c := 1; c < d; c++ {
			rec[c] = rec[c-1]
			if rng.Float64() < 0.25 {
				rec[c] = 1 - rec[c]
			}
		}
		ds.Append(rec)
	}
	return ds
}

// hierMixedData builds a dataset whose attributes all carry taxonomy
// trees (binary hierarchies over 8 bins, so levels 0..2 exist), for
// level > 0 equivalence.
func hierMixedData(n, d int, seed int64) *dataset.Dataset {
	attrs := make([]dataset.Attribute, d)
	for i := range attrs {
		attrs[i] = dataset.NewContinuous(string(rune('a'+i)), 0, 1, 8)
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, d)
	for r := 0; r < n; r++ {
		base := rng.Intn(8)
		for c := range rec {
			v := base
			if rng.Float64() < 0.4 {
				v = rng.Intn(8)
			}
			rec[c] = uint16(v)
		}
		ds.Append(rec)
	}
	return ds
}

// TestScoreBatchBitIdenticalToLegacy is the central equivalence test:
// shared-scan results equal the legacy per-candidate path bit for bit,
// for MI, F and R, at every parallelism including 1 (odd n so 1/n is
// inexact and any normalization drift would show).
func TestScoreBatchBitIdenticalToLegacy(t *testing.T) {
	ds := wideBinaryData(2999, 8, 21)
	pairs := greedyShapedPairs(8, 4, 2)
	pairs = append(pairs, Pair{X: marginal.Var{Attr: 7}}) // empty parent set
	for _, fn := range []Function{MI, F, R} {
		want := NewScorer(fn, ds).ScoreBatchLegacy(1, pairs)
		for _, par := range []int{1, 2, 4, 8} {
			got := NewScorer(fn, ds).ScoreBatch(par, pairs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v parallelism %d pair %d: shared %v, legacy %v", fn, par, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScoreBatchBitIdenticalAtTaxonomyLevels repeats the equivalence
// with parents generalized to levels 1 and 2 of their taxonomies, as
// Algorithm 6's hierarchical candidates produce.
func TestScoreBatchBitIdenticalAtTaxonomyLevels(t *testing.T) {
	ds := hierMixedData(2477, 5, 22)
	var pairs []Pair
	for x := 0; x < 5; x++ {
		for p := 0; p < 5; p++ {
			if p == x {
				continue
			}
			for lvl := 0; lvl < 3; lvl++ {
				q := (p + 1) % 5
				if q == x {
					q = (q + 1) % 5
				}
				pairs = append(pairs, Pair{
					X:       marginal.Var{Attr: x},
					Parents: []marginal.Var{{Attr: p, Level: lvl}, {Attr: q, Level: 1}},
				})
			}
		}
	}
	for _, fn := range []Function{MI, R} {
		want := NewScorer(fn, ds).ScoreBatchLegacy(1, pairs)
		for _, par := range []int{1, 4} {
			got := NewScorer(fn, ds).ScoreBatch(par, pairs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v parallelism %d pair %d: shared %v, legacy %v", fn, par, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScoreBatchDuplicatesAndPermutations checks within-batch dedup: a
// duplicated pair and a parent-order permutation of it must yield the
// identical value computed once.
func TestScoreBatchDuplicatesAndPermutations(t *testing.T) {
	ds := wideBinaryData(1000, 4, 23)
	p1 := []marginal.Var{{Attr: 0}, {Attr: 1}}
	p2 := []marginal.Var{{Attr: 1}, {Attr: 0}}
	x := marginal.Var{Attr: 3}
	sc := NewScorer(R, ds)
	got := sc.ScoreBatch(2, []Pair{{X: x, Parents: p1}, {X: x, Parents: p2}, {X: x, Parents: p1}})
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("permuted/duplicate pairs disagree: %v", got)
	}
	if sc.CacheSize() != 1 {
		t.Errorf("memo holds %d entries, want 1 (canonical identity)", sc.CacheSize())
	}
	if got[0] != sc.Score(x, p2) {
		t.Error("Score after batch must hit the same memo entry")
	}
}

// TestScoreBatchReusesIndexesAcrossIterations checks the cross-iteration
// contract: when a later batch must rescore (here forced by a bounded
// memo; in the pipeline it is new children against recurring parent
// sets), the parent-configuration indexes built earlier are reused
// rather than rebuilt — and a grown V only adds indexes for its new
// subsets.
func TestScoreBatchReusesIndexesAcrossIterations(t *testing.T) {
	ds := wideBinaryData(1200, 8, 24)
	sc := NewScorerSized(MI, ds, 1)              // memo too small to short-circuit
	sc.ScoreBatch(2, greedyShapedPairs(8, 3, 2)) // subsets of {0,1,2}
	_, misses1 := sc.Indexes().Stats()
	if misses1 != 3 {
		t.Fatalf("first iteration built %d indexes, want 3", misses1)
	}
	sc.ScoreBatch(2, greedyShapedPairs(8, 4, 2)) // subsets of {0,1,2,3} ⊃ previous
	hits2, misses2 := sc.Indexes().Stats()
	if misses2-misses1 != 3 {
		t.Errorf("second iteration built %d new indexes, want 3 (the sets touching attr 3)", misses2-misses1)
	}
	if hits2 == 0 {
		t.Error("second iteration should hit the cached parent indexes")
	}
}

// TestScorerSharedScanRace stresses one scorer — memo, ladder and
// ParentIndex cache — under concurrent batch scoring (run with -race).
func TestScorerSharedScanRace(t *testing.T) {
	ds := wideBinaryData(1500, 8, 25)
	sc := NewScorerSized(R, ds, 16) // small bound: exercise eviction too
	pairs := greedyShapedPairs(8, 4, 2)
	want := NewScorer(R, ds).ScoreBatchLegacy(1, pairs)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(par int) {
			defer wg.Done()
			got := sc.ScoreBatch(par%4+1, pairs)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("concurrent batch diverged at pair %d", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestScorerBoundedMemo checks the ScorerCacheSize bound holds and
// never changes values — eviction only costs recomputes.
func TestScorerBoundedMemo(t *testing.T) {
	ds := wideBinaryData(800, 6, 26)
	pairs := greedyShapedPairs(6, 3, 2)
	unbounded := NewScorer(MI, ds).ScoreBatch(1, pairs)
	sc := NewScorerSized(MI, ds, 2)
	got := sc.ScoreBatch(1, pairs)
	for i := range unbounded {
		if got[i] != unbounded[i] {
			t.Fatalf("bounded scorer pair %d: %v, want %v", i, got[i], unbounded[i])
		}
	}
	if sc.CacheSize() > 2 {
		t.Errorf("memo holds %d entries, bound is 2", sc.CacheSize())
	}
	again := sc.ScoreBatch(1, pairs)
	for i := range unbounded {
		if again[i] != unbounded[i] {
			t.Fatalf("recomputed pair %d after eviction: %v, want %v", i, again[i], unbounded[i])
		}
	}
}

// TestParentEntropyCached checks H(Π) against infotheory.Entropy on the
// materialized parent marginal.
func TestParentEntropyCached(t *testing.T) {
	ds := wideBinaryData(2000, 4, 27)
	sc := NewScorer(MI, ds)
	parents := []marginal.Var{{Attr: 0}, {Attr: 2}}
	pi := marginal.Materialize(ds, parents)
	want := infotheory.Entropy(pi.P)
	if got := sc.ParentEntropy(parents); math.Abs(got-want) > 1e-12 {
		t.Errorf("H(Π) = %v, want %v", got, want)
	}
}

// TestScoreBatchFPanicsOnNonBinary preserves the legacy panic contract
// for F on general domains through the shared path.
func TestScoreBatchFPanicsOnNonBinary(t *testing.T) {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1"}),
		dataset.NewCategorical("b", []string{"x", "y", "z"}),
	}
	ds := dataset.New(attrs)
	ds.Append([]uint16{0, 1})
	ds.Append([]uint16{1, 2})
	sc := NewScorer(F, ds)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-binary attribute under F")
		}
	}()
	sc.ScoreBatch(1, []Pair{{X: marginal.Var{Attr: 0}, Parents: []marginal.Var{{Attr: 1}}}})
}
