// Package score implements the three score functions PrivBayes can use
// inside the exponential mechanism when selecting attribute-parent pairs —
// mutual information I (Section 4.2), the surrogate F for binary domains
// (Sections 4.3–4.4), and the surrogate R for general domains
// (Section 5.3) — together with their sensitivities (Lemma 4.1,
// Theorem 4.5, Theorem 5.3) and the maximal-parent-set generation of
// Algorithms 5 and 6.
package score

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"privbayes/internal/dataset"
	"privbayes/internal/infotheory"
	"privbayes/internal/marginal"
	"privbayes/internal/parallel"
)

// Function selects which score the exponential mechanism optimizes.
type Function int

const (
	// MI is the raw mutual information I(X, Π) (Equation 5).
	MI Function = iota
	// F is the binary-domain surrogate of Section 4.3 with
	// sensitivity 1/n.
	F
	// R is the general-domain surrogate of Section 5.3 with
	// sensitivity 3/n + 2/n².
	R
)

// String names the function as in the paper.
func (f Function) String() string {
	switch f {
	case MI:
		return "I"
	case F:
		return "F"
	case R:
		return "R"
	default:
		return fmt.Sprintf("Function(%d)", int(f))
	}
}

// SensitivityI returns S(I) per Lemma 4.1. binary reports whether X or Π
// is guaranteed binary for every candidate pair.
func SensitivityI(n int, binary bool) float64 {
	fn := float64(n)
	if n <= 1 {
		return 1
	}
	if binary {
		return math.Log2(fn)/fn + (fn-1)/fn*math.Log2(fn/(fn-1))
	}
	return 2/fn*math.Log2((fn+1)/2) + (fn-1)/fn*math.Log2((fn+1)/(fn-1))
}

// SensitivityF returns S(F) = 1/n (Theorem 4.5).
func SensitivityF(n int) float64 { return 1 / float64(n) }

// SensitivityR returns the bound S(R) ≤ 3/n + 2/n² (Theorem 5.3).
func SensitivityR(n int) float64 {
	fn := float64(n)
	return 3/fn + 2/(fn*fn)
}

// Scorer evaluates one score function on a dataset, memoizing results by
// canonical (X, Π) identity. Scores depend only on the data, so a scorer
// can be reused across privacy budgets and greedy iterations — parent
// sets eligible at iteration i remain candidates at every later
// iteration, which makes the memo the dominant cost saver of the
// harness. Batch evaluation additionally shares row scans between
// candidates with the same parent set (see shared.go), backed by a
// parent-configuration index cache that persists across iterations.
type Scorer struct {
	Fn Function
	ds *dataset.Dataset

	mu   sync.Mutex
	memo *marginal.VarLRU[float64]

	idx *marginal.IndexCache

	// cs, when set, is the counts-mode seam: joints come from the
	// count source instead of row scans, and ds is a virtual dataset
	// carrying only schema and row count. Joint count tables are
	// integer-exact either way, so counts-mode scores are bit-identical
	// to row-scan scores.
	cs marginal.CountSource

	allBinary bool
}

// NewScorer builds a scorer for the dataset with an unbounded memo.
// Using F on a dataset with any non-binary attribute panics at Score
// time, matching the paper's NP-hardness result for general-domain F
// (Theorem 5.1).
func NewScorer(fn Function, ds *dataset.Dataset) *Scorer {
	return NewScorerSized(fn, ds, 0)
}

// NewScorerSized builds a scorer whose memo holds at most cacheSize
// scored pairs, evicting least-recently-used entries beyond it —
// bounding the memory of long-running services that share one Scorer
// across many Fit calls. cacheSize <= 0 means unbounded (NewScorer).
// Eviction only ever costs a recompute: scores are pure functions of the
// data, so results are unaffected.
func NewScorerSized(fn Function, ds *dataset.Dataset, cacheSize int) *Scorer {
	all := true
	for i := 0; i < ds.D(); i++ {
		if ds.Attr(i).Size() != 2 {
			all = false
			break
		}
	}
	return &Scorer{
		Fn:        fn,
		ds:        ds,
		memo:      marginal.NewVarLRU[float64](cacheSize),
		idx:       marginal.NewIndexCache(0),
		allBinary: all,
	}
}

// NewScorerCounts builds a scorer that evaluates scores from a count
// source instead of materialized rows — the out-of-core scoring path.
// The dataset behind it is virtual (schema + cs.Rows() only); every
// joint is requested from cs, whose integer count tables make the
// resulting scores bit-identical to an in-memory scorer over the same
// rows. cacheSize bounds the memo as in NewScorerSized.
func NewScorerCounts(fn Function, attrs []dataset.Attribute, cs marginal.CountSource, cacheSize int) *Scorer {
	s := NewScorerSized(fn, dataset.NewVirtual(attrs, cs.Rows()), cacheSize)
	s.cs = cs
	return s
}

// CountSource returns the count source a counts-mode scorer reads, or
// nil for a row-backed scorer — pipelines use it to verify a shared
// scorer matches the fit's data source.
func (s *Scorer) CountSource() marginal.CountSource { return s.cs }

// Sensitivity returns the sensitivity of the configured score function on
// this dataset, for use as the exponential-mechanism scaling factor.
func (s *Scorer) Sensitivity() float64 {
	n := s.ds.N()
	switch s.Fn {
	case MI:
		return SensitivityI(n, s.allBinary)
	case F:
		return SensitivityF(n)
	case R:
		return SensitivityR(n)
	default:
		panic("score: unknown function")
	}
}

// Score evaluates the configured function on the AP pair (x, parents)
// through the per-candidate path, memoizing the result. Parents are
// treated jointly; their order does not affect the value.
func (s *Scorer) Score(x marginal.Var, parents []marginal.Var) float64 {
	canon := canonPair(x, parents)
	key := marginal.VarsKey(canon)
	s.mu.Lock()
	if v, ok := s.memo.Get(key, canon); ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()

	v := s.compute(x, parents)

	s.mu.Lock()
	s.memo.PutIfAbsent(key, canon, v)
	s.mu.Unlock()
	return v
}

// Pair is one candidate AP pair for batch scoring.
type Pair struct {
	X       marginal.Var
	Parents []marginal.Var
}

// ScoreBatchLegacy is the pre-shared-scan reference implementation: one
// full-row materialization per uncached candidate, fanned out across up
// to `parallelism` workers, memoized by canonical string key for the
// duration of the batch. It is retained as the ground truth the
// equivalence tests hold ScoreBatch to (bit-identical values) and as the
// baseline of BenchmarkScoreBatchLegacy; new code should use ScoreBatch.
func (s *Scorer) ScoreBatchLegacy(parallelism int, pairs []Pair) []float64 {
	var mu sync.Mutex
	cache := make(map[string]float64)
	scoreOne := func(p Pair) float64 {
		key := cacheKey(p.X, p.Parents)
		mu.Lock()
		v, ok := cache[key]
		mu.Unlock()
		if ok {
			return v
		}
		v = s.compute(p.X, p.Parents)
		mu.Lock()
		cache[key] = v
		mu.Unlock()
		return v
	}
	workers := parallel.Workers(parallelism)
	if workers <= 1 {
		out := make([]float64, len(pairs))
		for i, p := range pairs {
			out[i] = scoreOne(p)
		}
		return out
	}
	return parallel.Map(workers, len(pairs), func(i int) float64 {
		return scoreOne(pairs[i])
	})
}

// CacheSize reports the number of pairs currently memoized (at most the
// ScorerCacheSize bound when one is set).
func (s *Scorer) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memo.Len()
}

func (s *Scorer) compute(x marginal.Var, parents []marginal.Var) float64 {
	if s.cs != nil {
		v, err := s.computeCounts(x, parents)
		if err != nil {
			// Counts-mode fits route through ScoreBatchContext, which
			// surfaces source errors; the per-candidate path has no
			// error channel.
			panic(fmt.Sprintf("score: counts-mode Score: %v", err))
		}
		return v
	}
	vars := append(append([]marginal.Var(nil), parents...), x)
	switch s.Fn {
	case MI:
		joint := marginal.Materialize(s.ds, vars)
		return infotheory.MutualInformationSplit(joint)
	case R:
		joint := marginal.Materialize(s.ds, vars)
		return RScore(joint)
	case F:
		if x.Size(s.ds) != 2 {
			panic("score: F requires a binary child attribute")
		}
		for _, p := range parents {
			if p.Size(s.ds) != 2 {
				panic("score: F requires binary parent attributes")
			}
		}
		counts := marginal.MaterializeCounts(s.ds, vars)
		return FScoreFromCounts(counts.P, s.ds.N())
	default:
		panic("score: unknown function")
	}
}

// computeCounts evaluates one candidate from the count source. The
// joint count table equals what a row scan would have counted, and the
// Ladder normalization reproduces the serial Materialize accumulation,
// so values are bit-identical to the row-scan compute.
func (s *Scorer) computeCounts(x marginal.Var, parents []marginal.Var) (float64, error) {
	n := s.ds.N()
	if n == 0 {
		return 0, fmt.Errorf("score: counts-mode scorer over an empty source")
	}
	joints, err := s.cs.CountTables(parents, []marginal.Var{x})
	if err != nil {
		return 0, err
	}
	joint := joints[0]
	switch s.Fn {
	case F:
		if x.Size(s.ds) != 2 {
			panic("score: F requires a binary child attribute")
		}
		for _, p := range parents {
			if p.Size(s.ds) != 2 {
				panic("score: F requires binary parent attributes")
			}
		}
		return FScoreFromCounts(joint.P, n), nil
	case MI:
		s.idx.Ladder(n).Apply(joint)
		return infotheory.MutualInformationSplit(joint), nil
	case R:
		s.idx.Ladder(n).Apply(joint)
		return RScore(joint), nil
	default:
		panic("score: unknown function")
	}
}

// RScore computes R(X, Π) = ½‖Pr[X,Π] − Pr[X]Pr[Π]‖₁ (Equation 11) from
// a joint laid out as [Π..., X].
func RScore(joint *marginal.Table) float64 {
	indep := infotheory.IndependentProduct(joint)
	return marginal.L1(joint, indep) / 2
}

// cacheKey is the original string memo key, kept for ScoreBatchLegacy so
// the benchmark baseline pays the same costs the legacy engine paid.
func cacheKey(x marginal.Var, parents []marginal.Var) string {
	ps := make([]string, len(parents))
	for i, p := range parents {
		ps[i] = fmt.Sprintf("%d.%d", p.Attr, p.Level)
	}
	sort.Strings(ps)
	return fmt.Sprintf("%d.%d|%s", x.Attr, x.Level, strings.Join(ps, ","))
}
