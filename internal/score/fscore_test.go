package score

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceF enumerates every assignment of columns to Z⁺₀ / Z⁺₁ and
// returns the exact F value — exponential in the column count, usable
// only for small tables, and the ground truth for the DP.
func bruteForceF(counts []float64, n int) float64 {
	cols := len(counts) / 2
	best := 2.0
	for mask := 0; mask < 1<<cols; mask++ {
		var k0, k1 float64
		for c := 0; c < cols; c++ {
			if mask>>c&1 == 0 {
				k0 += counts[2*c]
			} else {
				k1 += counts[2*c+1]
			}
		}
		v := posT(0.5-k0/float64(n)) + posT(0.5-k1/float64(n))
		if v < best {
			best = v
		}
	}
	return -best
}

func posT(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

func TestFScoreMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		cols := 1 << (1 + rng.Intn(3)) // 2, 4 or 8 columns (k = 1..3)
		n := 5 + rng.Intn(60)
		counts := make([]float64, 2*cols)
		for i := 0; i < n; i++ {
			counts[rng.Intn(2*cols)]++
		}
		got := FScoreFromCounts(counts, n)
		want := bruteForceF(counts, n)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (cols=%d, n=%d): DP = %v, brute force = %v\ncounts: %v",
				trial, cols, n, got, want, counts)
		}
	}
}

// A maximum joint distribution (Lemma 4.3) has F = 0: half the mass in
// each row, at most one non-zero per column.
func TestFScoreZeroAtMaximumJointDistribution(t *testing.T) {
	// Columns: (n/2, 0), (0, n/2).
	n := 100
	counts := []float64{50, 0, 0, 50}
	if got := FScoreFromCounts(counts, n); got != 0 {
		t.Errorf("F of maximum joint distribution = %v, want 0", got)
	}
}

// Table 3(a) of the paper with n = 10: F = −0.2, matching the paper's
// minimum L1 distance of 0.4 to the maximum joint distribution in
// Table 3(b).
func TestFScorePaperTable3(t *testing.T) {
	// Pr[X,Π] with |Π| = 4 columns; counts for n = 10.
	// X=0 row: .6 0 0 0 ; X=1 row: .1 .1 .1 .1
	counts := []float64{6, 1, 0, 1, 0, 1, 0, 1}
	got := FScoreFromCounts(counts, 10)
	if math.Abs(got-(-0.2)) > 1e-12 {
		t.Errorf("F(Table 3a) = %v, want -0.2", got)
	}
}

// Independent uniform binary variables sit at L1 distance 1 from every
// maximum joint distribution: F = −0.5.
func TestFScoreIndependentUniform(t *testing.T) {
	counts := []float64{25, 25, 25, 25}
	if got := FScoreFromCounts(counts, 100); math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("F of independent uniform = %v, want -0.5", got)
	}
}

func TestFScoreEmptyParentSet(t *testing.T) {
	// Single column (no parents): best assignment puts the column's
	// heavier row; the other side keeps its full 0.5 deficit.
	counts := []float64{70, 30}
	got := FScoreFromCounts(counts, 100)
	if math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("F with one column = %v, want -0.5", got)
	}
}

func TestFScoreRange(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		cols := 1 << uint(rng.Intn(4))
		n := 1 + rng.Intn(100)
		counts := make([]float64, 2*cols)
		for i := 0; i < n; i++ {
			counts[rng.Intn(2*cols)]++
		}
		f := FScoreFromCounts(counts, n)
		if f > 0 || f < -1 {
			t.Fatalf("F = %v out of range [-1, 0]", f)
		}
	}
}

// S(F) = 1/n (Theorem 4.5), verified on random neighboring datasets.
func TestFScoreSensitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 40
	bound := 1.0/n + 1e-12
	for trial := 0; trial < 500; trial++ {
		cols := 1 << (1 + rng.Intn(2))
		counts := make([]float64, 2*cols)
		for i := 0; i < n; i++ {
			counts[rng.Intn(2*cols)]++
		}
		f1 := FScoreFromCounts(counts, n)
		// Move one tuple.
		for {
			from := rng.Intn(2 * cols)
			if counts[from] > 0 {
				counts[from]--
				counts[rng.Intn(2*cols)]++
				break
			}
		}
		f2 := FScoreFromCounts(counts, n)
		if math.Abs(f1-f2) > bound {
			t.Fatalf("trial %d: |ΔF| = %v exceeds 1/n", trial, math.Abs(f1-f2))
		}
	}
}

func TestFScoreEmptyDataset(t *testing.T) {
	if got := FScoreFromCounts([]float64{0, 0}, 0); got != -0.5 {
		t.Errorf("F on empty data = %v, want -0.5 sentinel", got)
	}
}

// The DP must stay exact at larger scales where the state frontier
// pruning actually kicks in.
func TestFScoreLargeScaleAgainstGreedyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 10000
	cols := 64 // k = 6
	counts := make([]float64, 2*cols)
	for i := 0; i < n; i++ {
		counts[rng.Intn(2*cols)]++
	}
	f := FScoreFromCounts(counts, n)
	if f > 0 || f < -1 {
		t.Fatalf("F = %v out of range", f)
	}
	// A uniform random table is near-independent: assigning each column
	// to one row forfeits the other row's share, so K0 + K1 ≈ 1/2 and
	// F ≈ −1/2 — the same value as exactly independent uniform data,
	// up to sampling noise that can only raise it.
	if f < -0.5 || f > -0.4 {
		t.Errorf("F = %v, expected ≈ -0.5 for balanced random table", f)
	}
}
