package score

import (
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/infotheory"
	"privbayes/internal/marginal"
)

// binaryData builds a small all-binary dataset with correlations.
func binaryData(n int, seed int64) *dataset.Dataset {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1"}),
		dataset.NewCategorical("b", []string{"0", "1"}),
		dataset.NewCategorical("c", []string{"0", "1"}),
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, 3)
	for i := 0; i < n; i++ {
		a := rng.Intn(2)
		b := a
		if rng.Float64() < 0.2 {
			b = 1 - a
		}
		c := rng.Intn(2)
		rec[0], rec[1], rec[2] = uint16(a), uint16(b), uint16(c)
		ds.Append(rec)
	}
	return ds
}

func TestSensitivityFormulas(t *testing.T) {
	n := 1000
	fn := float64(n)
	wantBinary := math.Log2(fn)/fn + (fn-1)/fn*math.Log2(fn/(fn-1))
	if got := SensitivityI(n, true); math.Abs(got-wantBinary) > 1e-15 {
		t.Errorf("S(I) binary = %v, want %v", got, wantBinary)
	}
	wantGeneral := 2/fn*math.Log2((fn+1)/2) + (fn-1)/fn*math.Log2((fn+1)/(fn-1))
	if got := SensitivityI(n, false); math.Abs(got-wantGeneral) > 1e-15 {
		t.Errorf("S(I) general = %v, want %v", got, wantGeneral)
	}
	if got := SensitivityF(n); got != 1.0/fn {
		t.Errorf("S(F) = %v", got)
	}
	if got := SensitivityR(n); math.Abs(got-(3/fn+2/(fn*fn))) > 1e-18 {
		t.Errorf("S(R) = %v", got)
	}
}

// The paper's key sensitivity ordering: S(F) < S(R) ≪ S(I) (Section 5.3,
// Table 4): S(F) is less than a third of S(R), and both are below
// S(I)/log(n)-ish scale.
func TestSensitivityOrdering(t *testing.T) {
	for _, n := range []int{100, 10000, 1000000} {
		sf, sr, si := SensitivityF(n), SensitivityR(n), SensitivityI(n, true)
		if !(sf < sr && sr < si) {
			t.Errorf("n=%d: want S(F) < S(R) < S(I), got %v, %v, %v", n, sf, sr, si)
		}
		if sf > sr/3+1e-12 {
			t.Errorf("n=%d: S(F) should be at most a third of S(R)", n)
		}
		if si < math.Log2(float64(n))/float64(n) {
			t.Errorf("n=%d: S(I) must exceed log(n)/n (Section 4.3)", n)
		}
	}
}

// Lemma 4.1's binary-case bound is achieved by the Table 7 example.
func TestSensitivityIAchievedByTable7Example(t *testing.T) {
	n := 101.0
	// Layout rows = π ∈ {0,1,2}, cols = x ∈ {0,1}; I computed with X last.
	d1 := jointTable([][]float64{{1 / n, 0}, {0, (n - 1) / n}, {0, 0}})
	d2 := jointTable([][]float64{{0, 0}, {0, (n - 1) / n}, {0, 1 / n}})
	gap := math.Abs(infotheory.MutualInformationSplit(d1) - infotheory.MutualInformationSplit(d2))
	want := SensitivityI(int(n), true)
	if math.Abs(gap-want) > 1e-12 {
		t.Errorf("Table 7 neighboring pair: ΔI = %v, S(I) = %v", gap, want)
	}
}

// Lemma 4.1's general-case bound is achieved by the Table 6 example.
func TestSensitivityIAchievedByTable6Example(t *testing.T) {
	n := 101.0 // odd so (n−1)/2 is integral
	h := (n - 1) / (2 * n)
	d1 := jointTable([][]float64{{1 / n, 0, 0}, {0, 0, h}, {0, h, 0}})
	d2 := jointTable([][]float64{{0, 0, 0}, {0, 0, h}, {0, h, 1 / n}})
	gap := math.Abs(infotheory.MutualInformationSplit(d1) - infotheory.MutualInformationSplit(d2))
	want := SensitivityI(int(n), false)
	if math.Abs(gap-want) > 1e-12 {
		t.Errorf("Table 6 neighboring pair: ΔI = %v, S(I) = %v", gap, want)
	}
}

// jointTable builds a [Π, X] table from rows = π, cols = x.
func jointTable(p [][]float64) *marginal.Table {
	rows, cols := len(p), len(p[0])
	flat := make([]float64, 0, rows*cols)
	for _, r := range p {
		flat = append(flat, r...)
	}
	return &marginal.Table{
		Vars: []marginal.Var{{Attr: 1}, {Attr: 0}},
		Dims: []int{rows, cols},
		P:    flat,
	}
}

func TestRScoreKnownValues(t *testing.T) {
	// Independent: R = 0.
	ind := jointTable([][]float64{{0.25, 0.25}, {0.25, 0.25}})
	if got := RScore(ind); got > 1e-12 {
		t.Errorf("R of independent = %v, want 0", got)
	}
	// Identity coupling: product is uniform 0.25, L1 = 1, R = 0.5.
	id := jointTable([][]float64{{0.5, 0}, {0, 0.5}})
	if got := RScore(id); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("R of identity = %v, want 0.5", got)
	}
}

// The reviewer's Pinsker-inequality bound at the end of Section 5:
// R(X,Π) ≤ sqrt(ln2/2 · I(X,Π)).
func TestRScorePinskerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		rows, cols := 2+rng.Intn(4), 2+rng.Intn(3)
		p := make([][]float64, rows)
		var sum float64
		for i := range p {
			p[i] = make([]float64, cols)
			for j := range p[i] {
				p[i][j] = rng.Float64()
				sum += p[i][j]
			}
		}
		for i := range p {
			for j := range p[i] {
				p[i][j] /= sum
			}
		}
		joint := jointTable(p)
		r := RScore(joint)
		i := infotheory.MutualInformationSplit(joint)
		bound := math.Sqrt(math.Ln2 / 2 * i)
		if r > bound+1e-9 {
			t.Fatalf("trial %d: R = %v exceeds Pinsker bound %v (I = %v)", trial, r, bound, i)
		}
	}
}

// S(R) ≤ 3/n + 2/n² (Theorem 5.3), verified on random neighboring
// datasets.
func TestRScoreSensitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 60
	bound := SensitivityR(n)
	for trial := 0; trial < 300; trial++ {
		rows, cols := 2+rng.Intn(3), 2+rng.Intn(3)
		counts := randomCounts(rng, rows, cols, n)
		r1 := RScore(countsToJoint(counts, n))
		moveOneTuple(rng, counts)
		r2 := RScore(countsToJoint(counts, n))
		if math.Abs(r1-r2) > bound+1e-12 {
			t.Fatalf("trial %d: |ΔR| = %v exceeds S(R) = %v", trial, math.Abs(r1-r2), bound)
		}
	}
}

// S(I) bound of Lemma 4.1, verified on random neighboring datasets.
func TestMISensitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 60
	bound := SensitivityI(n, false)
	for trial := 0; trial < 300; trial++ {
		rows, cols := 2+rng.Intn(3), 2+rng.Intn(3)
		counts := randomCounts(rng, rows, cols, n)
		i1 := infotheory.MutualInformationSplit(countsToJoint(counts, n))
		moveOneTuple(rng, counts)
		i2 := infotheory.MutualInformationSplit(countsToJoint(counts, n))
		if math.Abs(i1-i2) > bound+1e-12 {
			t.Fatalf("trial %d: |ΔI| = %v exceeds S(I) = %v", trial, math.Abs(i1-i2), bound)
		}
	}
}

func randomCounts(rng *rand.Rand, rows, cols, n int) [][]int {
	counts := make([][]int, rows)
	for i := range counts {
		counts[i] = make([]int, cols)
	}
	for t := 0; t < n; t++ {
		counts[rng.Intn(rows)][rng.Intn(cols)]++
	}
	return counts
}

func moveOneTuple(rng *rand.Rand, counts [][]int) {
	rows, cols := len(counts), len(counts[0])
	for {
		i, j := rng.Intn(rows), rng.Intn(cols)
		if counts[i][j] > 0 {
			counts[i][j]--
			counts[rng.Intn(rows)][rng.Intn(cols)]++
			return
		}
	}
}

func countsToJoint(counts [][]int, n int) *marginal.Table {
	p := make([][]float64, len(counts))
	for i := range counts {
		p[i] = make([]float64, len(counts[i]))
		for j, c := range counts[i] {
			p[i][j] = float64(c) / float64(n)
		}
	}
	return jointTable(p)
}

func TestScorerCacheAndOrderInvariance(t *testing.T) {
	ds := binaryData(500, 14)
	sc := NewScorer(R, ds)
	x := marginal.Var{Attr: 0}
	p1 := []marginal.Var{{Attr: 1}, {Attr: 2}}
	p2 := []marginal.Var{{Attr: 2}, {Attr: 1}}
	v1 := sc.Score(x, p1)
	v2 := sc.Score(x, p2)
	if v1 != v2 {
		t.Errorf("parent order must not matter: %v vs %v", v1, v2)
	}
	if sc.CacheSize() != 1 {
		t.Errorf("cache size = %d, want 1 (canonical key)", sc.CacheSize())
	}
}

func TestScorerFRejectsNonBinary(t *testing.T) {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1"}),
		dataset.NewCategorical("b", []string{"x", "y", "z"}),
	}
	ds := dataset.New(attrs)
	ds.Append([]uint16{0, 1})
	sc := NewScorer(F, ds)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-binary attribute under F")
		}
	}()
	sc.Score(marginal.Var{Attr: 0}, []marginal.Var{{Attr: 1}})
}

func TestScorerSensitivitySelection(t *testing.T) {
	ds := binaryData(100, 15)
	if got := NewScorer(F, ds).Sensitivity(); got != SensitivityF(100) {
		t.Error("F scorer sensitivity wrong")
	}
	if got := NewScorer(R, ds).Sensitivity(); got != SensitivityR(100) {
		t.Error("R scorer sensitivity wrong")
	}
	if got := NewScorer(MI, ds).Sensitivity(); got != SensitivityI(100, true) {
		t.Error("MI scorer on binary data should use the binary bound")
	}
}

// The three scorers agree on ranking for a strongly correlated vs an
// independent pair.
func TestScorersAgreeOnObviousRanking(t *testing.T) {
	ds := binaryData(2000, 16)
	for _, fn := range []Function{MI, F, R} {
		sc := NewScorer(fn, ds)
		corr := sc.Score(marginal.Var{Attr: 1}, []marginal.Var{{Attr: 0}})  // b ≈ a
		indep := sc.Score(marginal.Var{Attr: 2}, []marginal.Var{{Attr: 0}}) // c independent
		if corr <= indep {
			t.Errorf("%v: correlated pair scored %v <= independent %v", fn, corr, indep)
		}
	}
}
