package score

import (
	"sort"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// psData builds a dataset whose attribute domain sizes drive the parent
// set caps: sizes 2, 4, 8, and 4-with-hierarchy (4 -> 2).
func psData() *dataset.Dataset {
	h := dataset.NewCategorical("h", []string{"a", "b", "c", "d"})
	h.Hierarchy = dataset.NewHierarchy(4, []int{0, 0, 1, 1})
	attrs := []dataset.Attribute{
		dataset.NewCategorical("x2", []string{"0", "1"}),
		dataset.NewCategorical("x4", []string{"0", "1", "2", "3"}),
		dataset.NewCategorical("x8", []string{"0", "1", "2", "3", "4", "5", "6", "7"}),
		h,
	}
	ds := dataset.New(attrs)
	ds.Append([]uint16{0, 0, 0, 0})
	return ds
}

// bruteMaximalSets computes Algorithm 5's answer naively: all subsets
// within the cap, then keep only the maximal ones.
func bruteMaximalSets(ds *dataset.Dataset, v []int, tau float64) map[string]bool {
	var all [][]marginal.Var
	for mask := 0; mask < 1<<len(v); mask++ {
		var set []marginal.Var
		size := 1.0
		for i, a := range v {
			if mask>>i&1 == 1 {
				set = append(set, marginal.Var{Attr: a})
				size *= float64(ds.Attr(a).Size())
			}
		}
		if size <= tau {
			all = append(all, set)
		}
	}
	maximal := make(map[string]bool)
	for i, s := range all {
		isMax := true
		for j, other := range all {
			if i != j && strictSubset(s, other) {
				isMax = false
				break
			}
		}
		if isMax {
			maximal[setKey(s)] = true
		}
	}
	if tau < 1 {
		return map[string]bool{}
	}
	return maximal
}

func strictSubset(a, b []marginal.Var) bool {
	if len(a) >= len(b) {
		return false
	}
	bs := make(map[marginal.Var]bool, len(b))
	for _, v := range b {
		bs[v] = true
	}
	for _, v := range a {
		if !bs[v] {
			return false
		}
	}
	return true
}

func TestMaximalParentSetsMatchesBruteForce(t *testing.T) {
	ds := psData()
	v := []int{0, 1, 2, 3}
	for _, tau := range []float64{0.5, 1, 2, 4, 8, 16, 64, 1000} {
		got := MaximalParentSets(ds, v, tau)
		gotKeys := make(map[string]bool)
		for _, s := range got {
			gotKeys[setKey(s)] = true
		}
		want := bruteMaximalSets(ds, v, tau)
		if len(gotKeys) != len(want) {
			t.Fatalf("tau=%v: got %d sets %v, want %d", tau, len(gotKeys), keys(gotKeys), len(want))
		}
		for k := range want {
			if !gotKeys[k] {
				t.Fatalf("tau=%v: missing maximal set %q", tau, k)
			}
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestMaximalParentSetsEdgeCases(t *testing.T) {
	ds := psData()
	// tau < 1: nothing fits, not even the empty set.
	if got := MaximalParentSets(ds, []int{0}, 0.5); len(got) != 0 {
		t.Errorf("tau < 1 should return no sets, got %v", got)
	}
	// Empty V: only the empty set.
	got := MaximalParentSets(ds, nil, 10)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("empty V should return {∅}, got %v", got)
	}
}

func TestMaximalParentSetsRespectCap(t *testing.T) {
	ds := psData()
	for _, tau := range []float64{2, 8, 32} {
		for _, s := range MaximalParentSets(ds, []int{0, 1, 2, 3}, tau) {
			if DomainSize(ds, s) > tau {
				t.Errorf("tau=%v: set %v has domain size %v", tau, s, DomainSize(ds, s))
			}
		}
	}
}

func TestMaximalParentSetsHierarchicalUsesLevels(t *testing.T) {
	ds := psData()
	// With tau = 4 and V = {x2, h}: raw h (size 4) + x2 (2) = 8 > 4,
	// but generalized h (size 2) + x2 = 4 fits.
	sets := MaximalParentSetsHierarchical(ds, []int{0, 3}, 4)
	foundGeneralized := false
	for _, s := range sets {
		if DomainSize(ds, s) > 4 {
			t.Errorf("set %v exceeds cap", s)
		}
		for _, v := range s {
			if v.Attr == 3 && v.Level == 1 {
				foundGeneralized = true
			}
		}
	}
	if !foundGeneralized {
		t.Errorf("expected a set using h at level 1, got %v", sets)
	}
}

// Maximality in the hierarchical sense: no returned set may coexist with
// an eligible variant that keeps one member at a strictly lower level.
func TestMaximalParentSetsHierarchicalLevelMaximality(t *testing.T) {
	ds := psData()
	sets := MaximalParentSetsHierarchical(ds, []int{0, 1, 3}, 8)
	seen := make(map[string]bool)
	for _, s := range sets {
		seen[setKey(s)] = true
	}
	for _, s := range sets {
		for i, v := range s {
			if v.Level == 0 {
				continue
			}
			// Lowering the level of one member must break the cap —
			// otherwise s was not maximal.
			lowered := append([]marginal.Var(nil), s...)
			lowered[i] = marginal.Var{Attr: v.Attr, Level: v.Level - 1}
			if DomainSize(ds, lowered) <= 8 {
				t.Errorf("set %v not maximal: lowered variant %v still fits", s, lowered)
			}
		}
	}
}

func TestMaximalParentSetsNoDuplicates(t *testing.T) {
	ds := psData()
	sets := MaximalParentSetsHierarchical(ds, []int{0, 1, 2, 3}, 16)
	seen := make(map[string]bool)
	for _, s := range sets {
		k := setKey(s)
		if seen[k] {
			t.Fatalf("duplicate set %q", k)
		}
		seen[k] = true
	}
}

func TestDomainSize(t *testing.T) {
	ds := psData()
	set := []marginal.Var{{Attr: 1}, {Attr: 2}}
	if got := DomainSize(ds, set); got != 32 {
		t.Errorf("DomainSize = %v, want 32", got)
	}
	gen := []marginal.Var{{Attr: 3, Level: 1}}
	if got := DomainSize(ds, gen); got != 2 {
		t.Errorf("generalized DomainSize = %v, want 2", got)
	}
}
