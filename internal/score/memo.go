package score

// The score memo keys: every AP pair is reduced to the canonical
// variable list [sorted parents..., X] and hashed to a compact uint64
// (marginal.VarsKey), replacing the original string-keyed map. The memo
// itself is a marginal.VarLRU — bounded when ScorerCacheSize is set, so
// long-running services sharing one Scorer across many Fit calls no
// longer grow without limit — which verifies the stored variable list on
// every lookup, so hash collisions can never return a value for the
// wrong pair.

import "privbayes/internal/marginal"

// canonPair returns the canonical variable list [sorted parents..., x]
// identifying an AP pair: parent order never affects a score's value, so
// the memo and the batch grouping both key on this form. Sorting is an
// insertion sort — parent sets hold at most a handful of variables.
func canonPair(x marginal.Var, parents []marginal.Var) []marginal.Var {
	c := make([]marginal.Var, len(parents)+1)
	copy(c, parents)
	sortVars(c[:len(parents)])
	c[len(parents)] = x
	return c
}

func sortVars(vs []marginal.Var) {
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		j := i - 1
		for j >= 0 && varLess(v, vs[j]) {
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = v
	}
}

func varLess(a, b marginal.Var) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	return a.Level < b.Level
}

func varsEq(a, b []marginal.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
