package score

// Algorithms 5 and 6 of the paper: generate every maximal parent set —
// a subset of the already-chosen attributes V (optionally generalized
// through taxonomy trees) whose joint domain size stays within a
// θ-usefulness-derived cap τ, such that no eligible strict superset (or
// less-generalized variant) exists.

import (
	"fmt"
	"sort"
	"strings"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// MaximalParentSets implements Algorithm 5: all maximal subsets of the
// attributes V (at raw level) whose domain-size product is at most tau.
// An empty result means even the empty set violates the cap (tau < 1);
// a result containing only the empty set means no attribute fits.
func MaximalParentSets(ds *dataset.Dataset, v []int, tau float64) [][]marginal.Var {
	e := &psEnv{ds: ds, v: v, memo: make(map[string][][]marginal.Var)}
	return e.run(0, tau, false)
}

// MaximalParentSetsHierarchical implements Algorithm 6: like Algorithm 5
// but each attribute may participate at any generalization level of its
// taxonomy tree, and maximality also forbids replacing a member with a
// less-generalized version of itself.
func MaximalParentSetsHierarchical(ds *dataset.Dataset, v []int, tau float64) [][]marginal.Var {
	e := &psEnv{ds: ds, v: v, memo: make(map[string][][]marginal.Var)}
	return e.run(0, tau, true)
}

type psEnv struct {
	ds   *dataset.Dataset
	v    []int
	memo map[string][][]marginal.Var
}

// run returns the maximal parent sets drawn from v[i:] under cap tau.
// The recursion follows the paper exactly, with memoization on (i, tau):
// tau only ever shrinks by division with attribute domain sizes, so the
// float key is stable across identical call paths.
func (e *psEnv) run(i int, tau float64, hier bool) [][]marginal.Var {
	if tau < 1 {
		return nil
	}
	if i == len(e.v) {
		return [][]marginal.Var{{}}
	}
	key := fmt.Sprintf("%d|%.9g|%t", i, tau, hier)
	if r, ok := e.memo[key]; ok {
		return r
	}

	x := e.v[i]
	attr := e.ds.Attr(x)
	seen := make(map[string]bool) // the paper's set U, keyed canonically
	var out [][]marginal.Var

	levels := 1
	if hier {
		levels = attr.Height()
	}
	// Least-generalized levels first, so a set that fits with a finer
	// version of X suppresses the coarser duplicates (Lines 5-8 of
	// Algorithm 6). With hier == false this is the single Line 5-7 branch
	// of Algorithm 5.
	for lvl := 0; lvl < levels; lvl++ {
		size := attr.SizeAt(lvl)
		if size <= 1 && lvl > 0 {
			break // fully generalized levels carry no information
		}
		for _, z := range e.run(i+1, tau/float64(size), hier) {
			k := setKey(z)
			if seen[k] {
				continue
			}
			seen[k] = true
			withX := append(append([]marginal.Var(nil), z...), marginal.Var{Attr: x, Level: lvl})
			out = append(out, withX)
		}
	}
	// Sets that exclude X entirely (Line 4 of Algorithm 5 / Lines 9-11 of
	// Algorithm 6) survive only when no variant including X covers them.
	for _, z := range e.run(i+1, tau, hier) {
		if seen[setKey(z)] {
			continue
		}
		out = append(out, z)
	}
	e.memo[key] = out
	return out
}

func setKey(set []marginal.Var) string {
	parts := make([]string, len(set))
	for i, v := range set {
		parts[i] = fmt.Sprintf("%d.%d", v.Attr, v.Level)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// DomainSize returns the product of the variables' domain sizes.
func DomainSize(ds *dataset.Dataset, set []marginal.Var) float64 {
	size := 1.0
	for _, v := range set {
		size *= float64(v.Size(ds))
	}
	return size
}
