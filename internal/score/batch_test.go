package score

import (
	"sync"
	"testing"

	"privbayes/internal/marginal"
)

func batchPairs() []Pair {
	return []Pair{
		{X: marginal.Var{Attr: 0}},
		{X: marginal.Var{Attr: 0}, Parents: []marginal.Var{{Attr: 1}}},
		{X: marginal.Var{Attr: 0}, Parents: []marginal.Var{{Attr: 2}}},
		{X: marginal.Var{Attr: 0}, Parents: []marginal.Var{{Attr: 1}, {Attr: 2}}},
		{X: marginal.Var{Attr: 1}, Parents: []marginal.Var{{Attr: 2}}},
		{X: marginal.Var{Attr: 2}, Parents: []marginal.Var{{Attr: 0}, {Attr: 1}}},
	}
}

// TestScoreBatchMatchesSequential checks the parallel fan-out returns
// exactly the values sequential Score calls produce, in input order, for
// every score function.
func TestScoreBatchMatchesSequential(t *testing.T) {
	ds := binaryData(4000, 11)
	pairs := batchPairs()
	for _, fn := range []Function{MI, F, R} {
		want := make([]float64, len(pairs))
		serial := NewScorer(fn, ds)
		for i, p := range pairs {
			want[i] = serial.Score(p.X, p.Parents)
		}
		for _, par := range []int{1, 2, 8} {
			got := NewScorer(fn, ds).ScoreBatch(par, pairs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v parallelism %d: pair %d = %v, want %v", fn, par, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScorerSharedAcrossGoroutines stresses the cache under concurrent
// batch evaluation from many goroutines (run with -race).
func TestScorerSharedAcrossGoroutines(t *testing.T) {
	ds := binaryData(2000, 12)
	sc := NewScorer(R, ds)
	pairs := batchPairs()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc.ScoreBatch(4, pairs)
		}()
	}
	wg.Wait()
	if sc.CacheSize() != len(pairs) {
		t.Errorf("cache holds %d entries, want %d", sc.CacheSize(), len(pairs))
	}
	want := NewScorer(R, ds).ScoreBatch(1, pairs)
	got := sc.ScoreBatch(1, pairs)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d cached %v, want %v", i, got[i], want[i])
		}
	}
}

// TestScoreBatchWarmsCache checks a batch call fills the cache so later
// Score calls are hits — the precompute workflow for shared scorers.
func TestScoreBatchWarmsCache(t *testing.T) {
	ds := binaryData(1000, 13)
	sc := NewScorer(MI, ds)
	pairs := batchPairs()
	sc.ScoreBatch(4, pairs)
	if sc.CacheSize() != len(pairs) {
		t.Fatalf("cache holds %d entries after batch, want %d", sc.CacheSize(), len(pairs))
	}
}
