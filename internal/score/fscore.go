package score

// This file implements the dynamic program of Section 4.4, which computes
//
//	F(X, Π) = −min over maximum joint distributions of ½‖Pr[X,Π] − Pr⋄‖₁
//
// for binary X and binary parents. The joint counts form a 2 × 2^k
// matrix; every maximum joint distribution has at most one non-zero
// entry per column (Lemma 4.3), so each column's mass is assigned either
// to row X=0 (growing K0) or row X=1 (growing K1), and
//
//	F = −min over reachable (K0, K1) of (½ − K0)₊ + (½ − K1)₊ .
//
// Because every count is a multiple of 1/n, states live on an integer
// grid and dominated states (Definition 4.6) can be discarded, keeping
// at most n+1 states per column and O(n·2^k) total time.

// fState is a reachable (K0, K1) pair scaled by n.
type fState struct{ a, b int }

// FScoreFromCounts computes F from the integer count cells of a joint
// table laid out as [Π..., X] with X binary (cells alternate X=0, X=1
// per parent configuration). n is the number of tuples.
func FScoreFromCounts(counts []float64, n int) float64 {
	if n == 0 {
		return -0.5
	}
	cols := len(counts) / 2
	// states are kept sorted by a ascending with b strictly descending;
	// that is exactly the Pareto frontier of reachable states.
	states := []fState{{0, 0}}
	next := make([]fState, 0, 64)
	for c := 0; c < cols; c++ {
		n0 := int(counts[2*c] + 0.5)
		n1 := int(counts[2*c+1] + 0.5)
		if n0 == 0 && n1 == 0 {
			continue
		}
		// Merge the two shifted copies of the frontier: assign this
		// column to Z⁺₀ (a += n0) or to Z⁺₁ (b += n1). Both copies stay
		// sorted by a ascending, so a linear merge suffices; equal-a
		// entries keep only the larger b.
		next = next[:0]
		i, j := 0, 0
		for i < len(states) || j < len(states) {
			var s fState
			takeI := j >= len(states)
			if !takeI && i < len(states) {
				takeI = states[i].a+n0 <= states[j].a
			}
			if takeI {
				s = fState{states[i].a + n0, states[i].b}
				i++
			} else {
				s = fState{states[j].a, states[j].b + n1}
				j++
			}
			if len(next) > 0 && next[len(next)-1].a == s.a {
				if s.b > next[len(next)-1].b {
					next[len(next)-1].b = s.b
				}
				continue
			}
			next = append(next, s)
		}
		// Prune dominated states (Definition 4.6): scanning from the
		// largest a down, a state survives only if its b strictly
		// exceeds every b seen so far. The survivors, reversed, are the
		// Pareto frontier sorted by a ascending, b strictly descending.
		states = states[:0]
		maxB := -1
		for k := len(next) - 1; k >= 0; k-- {
			if next[k].b > maxB {
				states = append(states, next[k])
				maxB = next[k].b
			}
		}
		// Restore ascending-a order for the next merge.
		for l, r := 0, len(states)-1; l < r; l, r = l+1, r-1 {
			states[l], states[r] = states[r], states[l]
		}
	}
	best := 2.0 // anything above the max possible value of the expression
	nf := float64(n)
	for _, s := range states {
		v := pos(0.5-float64(s.a)/nf) + pos(0.5-float64(s.b)/nf)
		if v < best {
			best = v
		}
	}
	return -best
}

func pos(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}
