// Package faultfs is the filesystem seam under every durability-
// critical write path (the privacy-ledger WAL, model-artifact
// persistence, registry loads). Production code takes an FS value and
// runs against the real filesystem via OS; crash-safety tests swap in a
// Fault wrapper that fails a chosen operation deterministically or
// simulates a process crash at the Nth operation — including torn final
// writes and the loss of written-but-unsynced data — so every recovery
// path can be exercised without killing a process.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the subset of *os.File the durability paths use.
type File interface {
	io.Writer
	io.Reader
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS abstracts the filesystem operations that decide durability.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file (os.ReadFile).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate resizes name to size bytes.
	Truncate(name string, size int64) error
	// Stat stats name.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs the directory itself, making renames and newly
	// created names in it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Or returns fs, or OS when fs is nil — the idiom for optional FS
// fields on config structs.
func Or(fs FS) FS {
	if fs == nil {
		return OS
	}
	return fs
}

// Op identifies one class of filesystem operation for failpoint
// matching and op counting.
type Op uint8

const (
	OpOpen Op = iota
	OpCreateTemp
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpTruncate
	OpStat
	OpSyncDir
	opCount
)

var opNames = [opCount]string{
	"open", "createtemp", "read", "write", "sync", "close",
	"rename", "remove", "truncate", "stat", "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ErrInjected is returned by an operation a failpoint selected. The op
// has no effect on the underlying filesystem.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after the crash point: the
// simulated process is dead, nothing reaches the disk anymore.
var ErrCrashed = errors.New("faultfs: crashed")

// mutating reports whether the op changes filesystem state. Only
// mutating ops advance the fault counters, so adding a read-only probe
// to production code cannot shift every crash point in the sweep.
func mutating(op Op) bool {
	switch op {
	case OpWrite, OpSync, OpRename, OpRemove, OpTruncate, OpCreateTemp, OpSyncDir, OpClose:
		return true
	}
	return false
}

// Fault wraps an FS with deterministic failure injection. Configure at
// most one of FailAt/CrashAt before use; the zero configuration passes
// every operation through.
type Fault struct {
	inner FS

	mu      sync.Mutex
	n       int64 // mutating ops observed so far
	failAt  int64 // 1-based op index to fail, 0 = disabled
	failErr error
	crashAt int64 // 1-based op index to crash at, 0 = disabled
	crashed bool
	// tornWrites applies the first half of the crash-point write before
	// dying, modeling a torn sector.
	tornWrites bool

	// synced tracks, per path, the durable byte size: what survives the
	// crash. Writes grow files only tentatively; Sync promotes the
	// current size to durable. On crash every tracked file is truncated
	// back to its durable size.
	sizes map[string]*fileState
}

// fileState tracks one path's written-vs-synced sizes.
type fileState struct {
	size   int64 // bytes written (visible while the process lives)
	synced int64 // bytes guaranteed to survive a crash
}

// NewFault wraps inner (nil = the real filesystem).
func NewFault(inner FS) *Fault {
	return &Fault{inner: Or(inner), sizes: map[string]*fileState{}}
}

// FailAt makes the n-th (1-based) mutating operation return err without
// reaching the filesystem; later operations succeed normally. err nil
// selects ErrInjected.
func (f *Fault) FailAt(n int64, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.failErr = n, err
}

// CrashAt simulates a kill -9 plus power loss at the n-th (1-based)
// mutating operation: the op does not take effect (except for a torn
// prefix when torn writes are enabled and the op is a write), every
// file's unsynced tail is discarded, and all later operations return
// ErrCrashed.
func (f *Fault) CrashAt(n int64, tornWrites bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt, f.tornWrites = n, tornWrites
}

// Ops returns the number of mutating operations observed so far. Run a
// workload once against a passthrough Fault to size a crash sweep.
func (f *Fault) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Crashed reports whether the crash point has been reached.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step advances the mutating-op counter and decides this op's fate:
// proceed (nil), fail (ErrInjected or the configured error), or crash.
// crashNow is true exactly at the crash-point op, letting write apply a
// torn prefix before the state is scrubbed.
func (f *Fault) step(op Op) (err error, crashNow bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed, false
	}
	if !mutating(op) {
		return nil, false
	}
	f.n++
	if f.failAt != 0 && f.n == f.failAt {
		return f.failErr, false
	}
	if f.crashAt != 0 && f.n >= f.crashAt {
		f.crashed = true
		return ErrCrashed, true
	}
	return nil, false
}

// crashScrub discards every file's unsynced tail, simulating the loss
// of the page cache. Called once, at the crash point.
func (f *Fault) crashScrub() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for path, st := range f.sizes {
		if st.size > st.synced {
			// Best-effort: the path may already be gone.
			f.inner.Truncate(path, st.synced)
			st.size = st.synced
		}
	}
}

// state returns the tracked entry for path, creating it at size.
func (f *Fault) state(path string, size int64) *fileState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.sizes[path]
	if !ok {
		st = &fileState{size: size, synced: size}
		f.sizes[path] = st
	}
	return st
}

func (f *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := f.step(OpOpen); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	var size int64
	if fi, err := f.inner.Stat(name); err == nil {
		size = fi.Size()
	}
	if flag&os.O_TRUNC != 0 {
		size = 0
	}
	st := f.state(name, size)
	f.mu.Lock()
	// Reopening resets the tracked size to reality (an earlier tracked
	// state may be stale after an untracked mutation).
	st.size = size
	if st.synced > size {
		st.synced = size
	}
	f.mu.Unlock()
	return &faultFile{f: f, inner: file, st: st}, nil
}

func (f *Fault) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.step(OpCreateTemp); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	// A fresh temp file is empty and — until the directory is synced —
	// not durably named; its durable size starts at zero.
	st := f.state(file.Name(), 0)
	f.mu.Lock()
	st.size, st.synced = 0, 0
	f.mu.Unlock()
	return &faultFile{f: f, inner: file, st: st}, nil
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	if err, _ := f.step(OpRead); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	err, crashNow := f.step(OpRename)
	if crashNow {
		f.crashScrub()
	}
	if err != nil {
		return err
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if st, ok := f.sizes[oldpath]; ok {
		delete(f.sizes, oldpath)
		f.sizes[newpath] = st
	}
	f.mu.Unlock()
	return nil
}

func (f *Fault) Remove(name string) error {
	err, crashNow := f.step(OpRemove)
	if crashNow {
		f.crashScrub()
	}
	if err != nil {
		return err
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.sizes, name)
	f.mu.Unlock()
	return nil
}

func (f *Fault) Truncate(name string, size int64) error {
	err, crashNow := f.step(OpTruncate)
	if crashNow {
		f.crashScrub()
	}
	if err != nil {
		return err
	}
	if err := f.inner.Truncate(name, size); err != nil {
		return err
	}
	f.mu.Lock()
	if st, ok := f.sizes[name]; ok {
		st.size = size
		if st.synced > size {
			st.synced = size
		}
	}
	f.mu.Unlock()
	return nil
}

func (f *Fault) Stat(name string) (os.FileInfo, error) {
	if err, _ := f.step(OpStat); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *Fault) SyncDir(dir string) error {
	err, crashNow := f.step(OpSyncDir)
	if crashNow {
		f.crashScrub()
	}
	if err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes per-file ops through the Fault's failpoints and
// size tracking.
type faultFile struct {
	f     *Fault
	inner File
	st    *fileState
}

func (ff *faultFile) Name() string { return ff.inner.Name() }

func (ff *faultFile) Read(p []byte) (int, error) {
	if err, _ := ff.f.step(OpRead); err != nil {
		return 0, err
	}
	return ff.inner.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	err, crashNow := ff.f.step(OpWrite)
	if crashNow {
		// Torn write: the crash lands mid-sector, persisting an
		// arbitrary prefix of the buffer. Half is the adversarial
		// middle ground — long enough to look like a record header,
		// short enough to fail its checksum.
		if ff.f.tornWrites && len(p) > 1 {
			n, werr := ff.inner.Write(p[:len(p)/2])
			if werr == nil {
				// The torn prefix reached its sector: it survives the
				// crash (that is what makes it adversarial), so it
				// counts as durable, not as scrubbable tail.
				ff.f.mu.Lock()
				ff.st.size += int64(n)
				ff.st.synced = ff.st.size
				ff.f.mu.Unlock()
			}
		}
		ff.f.crashScrub()
	}
	if err != nil {
		return 0, err
	}
	n, err := ff.inner.Write(p)
	ff.f.mu.Lock()
	ff.st.size += int64(n)
	ff.f.mu.Unlock()
	return n, err
}

func (ff *faultFile) Sync() error {
	err, crashNow := ff.f.step(OpSync)
	if crashNow {
		ff.f.crashScrub()
	}
	if err != nil {
		return err
	}
	if err := ff.inner.Sync(); err != nil {
		return err
	}
	ff.f.mu.Lock()
	ff.st.synced = ff.st.size
	ff.f.mu.Unlock()
	return nil
}

func (ff *faultFile) Close() error {
	err, crashNow := ff.f.step(OpClose)
	if crashNow {
		ff.f.crashScrub()
	}
	if err != nil {
		// The simulated process is dead; release the real descriptor so
		// the test process does not leak it.
		ff.inner.Close()
		return err
	}
	return ff.inner.Close()
}
