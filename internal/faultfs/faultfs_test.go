package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeWorkload runs a fixed little durability workload against fs:
// create temp, write twice, sync, write unsynced tail, close, rename,
// sync dir. Returns the first error.
func writeWorkload(fs FS, dir, dst string) error {
	f, err := fs.CreateTemp(dir, "w-*")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("synced-part|")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if _, err := f.Write([]byte("unsynced-tail")); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(f.Name(), dst); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func TestPassthroughAndOpCount(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out")
	f := NewFault(nil)
	if err := writeWorkload(f, dir, dst); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced-part|unsynced-tail" {
		t.Fatalf("content = %q", got)
	}
	// createtemp, write, sync, write, close, rename, syncdir = 7
	// mutating ops; the count must be stable or crash sweeps drift.
	if n := f.Ops(); n != 7 {
		t.Fatalf("ops = %d, want 7", n)
	}
}

func TestFailAtInjectsOnce(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(nil)
	f.FailAt(3, nil) // the sync
	err := writeWorkload(f, dir, filepath.Join(dir, "out"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The fault fired exactly once: a rerun on the same Fault passes.
	if err := writeWorkload(f, dir, filepath.Join(dir, "out2")); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

func TestCrashLosesUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(nil)
	// Crash at op 5 (the close): the synced prefix survives, the
	// unsynced tail written at op 4 is scrubbed.
	f.CrashAt(5, false)
	err := writeWorkload(f, dir, filepath.Join(dir, "out"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !f.Crashed() {
		t.Fatal("fault not marked crashed")
	}
	// The temp file (never renamed) holds only the synced prefix.
	names, _ := filepath.Glob(filepath.Join(dir, "w-*"))
	if len(names) != 1 {
		t.Fatalf("temp files = %v", names)
	}
	got, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced-part|" {
		t.Fatalf("after crash content = %q, want synced prefix only", got)
	}
	// Everything after the crash is dead.
	if _, err := f.ReadFile(names[0]); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
}

func TestCrashTornWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(nil)
	path := filepath.Join(dir, "log")
	file, err := f.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("whole-record")); err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	// Next write crashes torn: half of it lands.
	f.CrashAt(f.Ops()+1, true)
	if _, err := file.Write([]byte("DOOMED")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write err = %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "whole-recordDOO" {
		t.Fatalf("after torn write = %q, want synced part + half the doomed write", got)
	}
}
